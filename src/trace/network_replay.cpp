#include "trace/network_replay.hpp"

#include <stdexcept>
#include <vector>

#include "core/policies.hpp"
#include "sim/apps.hpp"
#include "sim/forwarder.hpp"
#include "trace/replayer.hpp"

namespace ndnp::trace {

std::string_view to_string(Deployment deployment) noexcept {
  switch (deployment) {
    case Deployment::kNone: return "none";
    case Deployment::kEdgeOnly: return "edge-only";
    case Deployment::kEverywhere: return "everywhere";
  }
  return "?";
}

NetworkReplayResult replay_over_network(const Trace& tr, const NetworkReplayConfig& config) {
  if (config.edge_routers == 0)
    throw std::invalid_argument("replay_over_network: need at least one edge router");
  if (!(config.time_compression > 0.0))
    throw std::invalid_argument("replay_over_network: time compression must be positive");

  sim::Scheduler sched;

  const auto make_policy = [&](bool is_edge) -> std::unique_ptr<core::CachePrivacyPolicy> {
    const bool wants_policy =
        config.policy_factory &&
        (config.deployment == Deployment::kEverywhere ||
         (config.deployment == Deployment::kEdgeOnly && is_edge));
    return wants_policy ? config.policy_factory() : nullptr;  // null -> NoPrivacy
  };

  // Core tier.
  sim::ForwarderConfig core_cfg;
  core_cfg.cs_capacity = config.core_cache;
  core_cfg.eviction = config.eviction;
  core_cfg.seed = config.seed ^ 0xff51afd7ed558ccdULL;
  sim::Forwarder core(sched, "core", core_cfg, make_policy(/*is_edge=*/false));

  // Producer: auto-generates the whole /web namespace.
  sim::ProducerConfig pcfg;
  pcfg.payload_size = 8'192;
  sim::Producer producer(sched, "origin", ndn::Name("/web"), "origin-key", pcfg,
                         config.seed + 1);
  const sim::LinkConfig core_producer = sim::wan_link(8.0, 0.5, 0.4);
  const auto [core_up, producer_down] = connect(core, producer, core_producer);
  (void)producer_down;
  core.add_route(ndn::Name("/web"), core_up);

  // Edge tier, one aggregate consumer per edge router.
  struct Edge {
    std::unique_ptr<sim::Forwarder> router;
    std::unique_ptr<sim::Consumer> consumer;
  };
  std::vector<Edge> edges;
  edges.reserve(config.edge_routers);
  const sim::LinkConfig access = sim::lan_link(0.3, 0.05);
  const sim::LinkConfig edge_core = sim::wan_link(2.0, 0.2, 0.4);
  for (std::size_t i = 0; i < config.edge_routers; ++i) {
    sim::ForwarderConfig edge_cfg;
    edge_cfg.cs_capacity = config.edge_cache;
    edge_cfg.eviction = config.eviction;
    edge_cfg.seed = config.seed + 100 + i;
    Edge edge;
    edge.router = std::make_unique<sim::Forwarder>(sched, "edge" + std::to_string(i),
                                                   edge_cfg, make_policy(/*is_edge=*/true));
    edge.consumer = std::make_unique<sim::Consumer>(sched, "users" + std::to_string(i),
                                                    config.seed + 200 + i);
    connect(*edge.consumer, *edge.router, access);
    const auto [up, down] = connect(*edge.router, core, edge_core);
    (void)down;
    edge.router->add_route(ndn::Name("/web"), up);
    edges.push_back(std::move(edge));
  }

  // Schedule every request at its compressed timestamp.
  NetworkReplayResult result;
  result.requests = tr.size();
  for (const TraceRecord& record : tr.records) {
    const auto at = static_cast<util::SimTime>(record.timestamp_s * 1e9 /
                                               config.time_compression);
    Edge& edge = edges[record.user_id % config.edge_routers];
    sim::Consumer* consumer = edge.consumer.get();
    const bool is_private =
        is_private_content(record.name, config.private_fraction, config.seed);
    const ndn::Name name = record.name;
    sched.schedule_at(at, [consumer, name, is_private, &result] {
      ndn::Interest interest;
      interest.name = name;
      interest.private_req = is_private;
      consumer->express_interest(interest,
                                 [&result](const ndn::Data&, util::SimDuration rtt) {
                                   ++result.completed;
                                   result.rtt_ms.add(util::to_millis(rtt));
                                 });
    });
  }
  sched.run();

  for (const Edge& edge : edges) result.edge_hits += edge.router->stats().exposed_hits;
  result.core_hits = core.stats().exposed_hits;
  result.producer_fetches = producer.interests_served();
  return result;
}

}  // namespace ndnp::trace
