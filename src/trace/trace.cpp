#include "trace/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "trace/stream.hpp"
#include "util/rng.hpp"

namespace ndnp::trace {

std::size_t Trace::distinct_names() const {
  // Sort-unique instead of a hash set: deterministic memory/iteration
  // behavior, and src/trace is kept free of unordered containers (enforced
  // by the determinism-guard test in tests/test_runner.cpp).
  std::vector<std::uint64_t> hashes;
  hashes.reserve(records.size());
  for (const TraceRecord& record : records) hashes.push_back(record.name.hash64());
  std::sort(hashes.begin(), hashes.end());
  return static_cast<std::size_t>(
      std::unique(hashes.begin(), hashes.end()) - hashes.begin());
}

Trace generate_trace(const TraceGenConfig& config) {
  if (config.num_users == 0 || config.num_objects == 0 || config.num_domains == 0)
    throw std::invalid_argument("generate_trace: counts must be positive");
  if (config.temporal_locality < 0.0 || config.temporal_locality > 1.0 ||
      config.user_affinity < 0.0 || config.user_affinity > 1.0)
    throw std::invalid_argument("generate_trace: locality/affinity must be in [0,1]");
  if (config.temporal_locality > 0.0 && config.locality_depth == 0)
    throw std::invalid_argument("generate_trace: locality_depth must be positive");

  util::Rng rng(config.seed);
  util::Rng domain_rng = rng.fork();
  const util::ZipfSampler object_popularity(config.num_objects, config.zipf_exponent);
  // User activity is itself skewed (a few heavy users dominate proxy
  // traces); a gentle Zipf captures that.
  const util::ZipfSampler user_activity(config.num_users, 0.5);

  // Stable object -> domain assignment: popular objects land in popular
  // domains (Zipf over domains), giving realistic namespace correlation.
  std::vector<std::uint32_t> object_domain(config.num_objects);
  const util::ZipfSampler domain_popularity(config.num_domains, 0.9);
  for (auto& domain : object_domain)
    domain = static_cast<std::uint32_t>(domain_popularity.sample(domain_rng) - 1);

  // Per-user preferred domains (for affinity) and per-domain object lists.
  std::vector<std::vector<std::size_t>> domain_objects(config.num_domains);
  for (std::size_t object = 0; object < config.num_objects; ++object)
    domain_objects[object_domain[object]].push_back(object);
  std::vector<std::uint32_t> preferred_domain(config.num_users);
  for (auto& domain : preferred_domain) {
    // Pick a non-empty preferred domain for each user.
    do {
      domain = static_cast<std::uint32_t>(domain_popularity.sample(domain_rng) - 1);
    } while (domain_objects[domain].empty());
  }

  // Per-user recent-history ring for temporal locality.
  std::vector<std::vector<std::size_t>> history(config.num_users);

  Trace trace;
  trace.catalogue_size = config.num_objects;
  trace.records.reserve(config.num_requests);

  // Arrival process: uniform order statistics over the duration (a
  // homogeneous Poisson process conditioned on the count).
  std::vector<double> times(config.num_requests);
  for (double& t : times) t = rng.uniform(0.0, config.duration_s);
  std::sort(times.begin(), times.end());

  for (std::size_t i = 0; i < config.num_requests; ++i) {
    const auto user = static_cast<std::uint32_t>(user_activity.sample(rng) - 1);
    std::size_t object;
    auto& recent = history[user];
    if (!recent.empty() && rng.bernoulli(config.temporal_locality)) {
      // Re-request something from this user's recent past.
      object = recent[recent.size() - 1 - rng.uniform_u64(recent.size())];
    } else if (config.user_affinity > 0.0 && rng.bernoulli(config.user_affinity)) {
      // Draw from the user's preferred domain.
      const auto& pool = domain_objects[preferred_domain[user]];
      object = pool[rng.uniform_u64(pool.size())];
    } else {
      object = object_popularity.sample(rng) - 1;  // global Zipf
    }
    if (config.temporal_locality > 0.0) {
      recent.push_back(object);
      if (recent.size() > config.locality_depth)
        recent.erase(recent.begin());  // depth is small; O(depth) shift is fine
    }

    TraceRecord record;
    record.timestamp_s = times[i];
    record.user_id = user;
    record.name = ndn::Name{"web", "dom" + std::to_string(object_domain[object]),
                            "obj" + std::to_string(object)};
    record.size_bytes = config.object_size;
    trace.records.push_back(std::move(record));
  }
  return trace;
}

void write_trace(const Trace& trace, std::ostream& out) {
  // Microsecond timestamp precision survives the round trip (default
  // stream precision of 6 significant digits would truncate second-scale
  // timestamps late in a 24 h trace).
  char line[64];
  for (const TraceRecord& record : trace.records) {
    std::snprintf(line, sizeof line, "%.6f %u ", record.timestamp_s, record.user_id);
    out << line << record.name.to_uri() << ' ' << record.size_bytes << '\n';
  }
}

Trace parse_trace(std::istream& in) { return parse_trace(in, 0, nullptr); }

Trace parse_trace(std::istream& in, std::uint64_t max_malformed, ParseStats* stats) {
  Trace trace;
  ParseStats local;
  std::string line;
  while (std::getline(in, line)) {
    ++local.lines;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') {
      ++local.comments;
      continue;
    }
    TraceRecord record;
    if (!parse_trace_line(line, record)) {
      ++local.malformed;
      if (local.malformed > max_malformed) {
        if (stats) *stats = local;
        throw TraceParseError(
            "parse_trace: malformed line " + std::to_string(local.lines) + " (" +
                std::to_string(local.malformed) + " malformed line(s) exceed threshold " +
                std::to_string(max_malformed) + ")",
            local);
      }
      continue;
    }
    ++local.records;
    trace.records.push_back(std::move(record));
  }
  if (stats) *stats = local;
  return trace;
}

}  // namespace ndnp::trace
