// Trace replayer: drives a CachePrivacyEngine with a request trace and
// reports the hit-rate/latency metrics of the Section VII evaluation.
//
// Content is divided into private and non-private deterministically by
// name hash with probability `private_fraction` (the paper: "we randomly
// divide requested content into private and non-private"); every request
// for private content carries the consumer privacy bit. The router caches
// everything, evicts per the configured policy (LRU in the paper), and a
// hit counts only when the policy exposes it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cache/content_store.hpp"
#include "core/engine.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace.hpp"
#include "util/fault_model.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace ndnp::trace {

struct ReplayConfig {
  /// 0 = unlimited (the paper's "Inf" column).
  std::size_t cache_capacity = 8'000;
  cache::EvictionPolicy eviction = cache::EvictionPolicy::kLru;
  /// Fraction of content marked private (paper: 0.05 / 0.1 / 0.2 / 0.4).
  double private_fraction = 0.2;
  /// Factory for the router's privacy policy (fresh instance per replay).
  std::function<std::unique_ptr<core::CachePrivacyPolicy>()> policy_factory;
  /// Upstream fetch delay presented on true misses (mean, with a spread
  /// sampled uniformly in [0.5, 1.5] of it).
  util::SimDuration upstream_delay = util::millis(40);
  /// Probability of admitting fetched content into the cache (1 = always).
  double cache_admission_probability = 1.0;
  /// Degraded-network ablation: a Gilbert–Elliott chain runs against the
  /// upstream fetch path. Each lost transmission is retried after
  /// `upstream_retry_penalty` (a retransmission timeout), compounding until
  /// the chain delivers — so burst loss shows up as fetch-delay inflation,
  /// never as a cache-state divergence. Disabled by default.
  util::GilbertElliottConfig upstream_loss{};
  util::SimDuration upstream_retry_penalty = util::millis(80);
  std::uint64_t seed = 1;
  /// Seed for the private/non-private content division; 0 (default) means
  /// "use `seed`". The sharded replayer (docs/SCALE.md) gives every shard
  /// its own `seed` stream but one shared private_class_seed, so all
  /// shards agree on which content is private.
  std::uint64_t private_class_seed = 0;
  /// Optional: when set, the engine/cs/policy counters are exported into
  /// this registry (prefix "engine") after the replay completes.
  util::MetricsRegistry* metrics = nullptr;
  /// Optional online telemetry hub (not owned). Every fed request lands in
  /// the hub's detectors — keyed by trace user_id (face scope) and depth-2
  /// name prefix (prefix scope) — and paces the hub's time series; finish()
  /// exports the hub's counters under "telemetry" when `metrics` is also
  /// set. The hub only observes: cache state, stats and golden vectors are
  /// identical with telemetry on, off, or compiled out (-DNDNP_TELEMETRY=0
  /// makes the hook vanish).
  telemetry::TelemetryHub* telemetry = nullptr;
};

struct ReplayResult {
  core::EngineStats stats;
  std::uint64_t private_requests = 0;
  /// Upstream transmissions lost to the Gilbert–Elliott chain (each one
  /// cost a retry penalty); 0 unless `upstream_loss` is enabled.
  std::uint64_t upstream_losses = 0;
  /// Fetches that needed at least one retry.
  std::uint64_t degraded_fetches = 0;

  /// The paper's Figure 5 metric, in percent.
  [[nodiscard]] double hit_rate_pct() const noexcept { return 100.0 * stats.hit_rate(); }
  /// Bandwidth view (exposed + delayed hits), in percent.
  [[nodiscard]] double cache_served_pct() const noexcept {
    return 100.0 * stats.cache_served_rate();
  }
  /// Mean response delay per request, ms.
  double mean_response_ms = 0.0;
};

/// Decide whether a name is in the private class for a given fraction —
/// deterministic (hash-based), so all requests for one content agree.
[[nodiscard]] bool is_private_content(const ndn::Name& name, double private_fraction,
                                      std::uint64_t seed);

/// Incremental replay: the engine-driving loop of `replay` exposed as
/// feed-one-record-at-a-time, so streaming sources (trace/stream.hpp) can
/// drive a router without materializing the trace. `replay(trace, config)`
/// is exactly `ReplaySession s(config); for (r : records) s.feed(r);
/// s.finish()` — the golden vectors pin the equivalence.
class ReplaySession {
 public:
  explicit ReplaySession(const ReplayConfig& config);

  /// Drive one request through the engine at its trace timestamp.
  void feed(const TraceRecord& record);

  [[nodiscard]] std::uint64_t fed() const noexcept { return fed_; }

  /// Finalize: snapshot engine stats, compute the mean response delay and
  /// export metrics (when config.metrics is set). Call once.
  [[nodiscard]] ReplayResult finish();

 private:
  ReplayConfig config_;
  core::CachePrivacyEngine engine_;
  util::Rng rng_;
  util::GilbertElliottChain upstream_chain_;
  util::Rng loss_rng_;
  core::CachePrivacyEngine::FetchFn fetch_;
  ReplayResult result_;
  double total_response_ms_ = 0.0;
  std::uint64_t fed_ = 0;
};

[[nodiscard]] ReplayResult replay(const Trace& trace, const ReplayConfig& config);

}  // namespace ndnp::trace
