#include "telemetry/timeseries.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ndnp::telemetry {

namespace {

/// Same canonical double formatting as util::MetricsSnapshot::to_json.
std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else maps to '_'.
std::string sanitize_prometheus(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

TimeSeriesRecorder::TimeSeriesRecorder(util::SimDuration sample_every, std::size_t max_rows)
    : cadence_(sample_every), max_rows_(max_rows) {
  if (cadence_ <= 0)
    throw std::invalid_argument("TimeSeriesRecorder: sample_every must be positive");
}

void TimeSeriesRecorder::add_probe(std::string name, Probe probe) {
  if (frozen_)
    throw std::logic_error("TimeSeriesRecorder: probe set frozen after first sample");
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      probes_[i] = std::move(probe);
      return;
    }
  }
  names_.push_back(std::move(name));
  probes_.push_back(std::move(probe));
}

std::size_t TimeSeriesRecorder::rows() const noexcept {
  return full_ ? max_rows_ : (max_rows_ == 0 ? times_.size() : head_);
}

void TimeSeriesRecorder::emit_row(util::SimTime t) {
  frozen_ = true;
  if (max_rows_ == 0) {
    times_.push_back(t);
    for (const Probe& probe : probes_) values_.push_back(probe ? probe() : 0.0);
    return;
  }
  const std::size_t stride = probes_.size();
  if (times_.size() < max_rows_) {
    times_.push_back(t);
    values_.resize(values_.size() + stride);
    for (std::size_t i = 0; i < stride; ++i)
      values_[(times_.size() - 1) * stride + i] = probes_[i] ? probes_[i]() : 0.0;
    head_ = times_.size() % max_rows_;
    full_ = times_.size() == max_rows_;
    return;
  }
  ++dropped_;
  times_[head_] = t;
  for (std::size_t i = 0; i < stride; ++i)
    values_[head_ * stride + i] = probes_[i] ? probes_[i]() : 0.0;
  head_ = (head_ + 1) % max_rows_;
}

void TimeSeriesRecorder::maybe_sample(util::SimTime now) {
  if (now < cadence_) return;
  const std::int64_t boundary = now / cadence_;  // boundaries at k * cadence_, k >= 1
  if (boundary <= last_boundary_) return;
  missed_ += static_cast<std::uint64_t>(boundary - last_boundary_ - 1);
  last_boundary_ = boundary;
  emit_row(boundary * cadence_);
}

void TimeSeriesRecorder::sample_at(util::SimTime t) { emit_row(t); }

std::string TimeSeriesRecorder::to_csv() const {
  std::string out = "t_ns";
  for (const std::string& name : names_) out += ',' + name;
  out += '\n';
  const std::size_t stride = probes_.size();
  const std::size_t n = rows();
  // Ring unwrap: oldest row first.
  const std::size_t start = full_ ? head_ : 0;
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t i = full_ ? (start + r) % max_rows_ : r;
    out += std::to_string(times_[i]);
    for (std::size_t c = 0; c < stride; ++c) out += ',' + format_double(values_[i * stride + c]);
    out += '\n';
  }
  return out;
}

std::string TimeSeriesRecorder::to_prometheus() const {
  std::string out;
  const std::size_t n = rows();
  if (n == 0) return out;
  const std::size_t last = full_ ? (head_ + max_rows_ - 1) % max_rows_ : n - 1;
  const std::size_t stride = probes_.size();
  const long long stamp_ms = times_[last] / 1'000'000;
  for (std::size_t c = 0; c < stride; ++c) {
    const std::string metric = "ndnp_" + sanitize_prometheus(names_[c]);
    out += "# HELP " + metric + " sampled gauge " + names_[c] + "\n";
    out += "# TYPE " + metric + " gauge\n";
    out += metric + ' ' + format_double(values_[last * stride + c]) + ' ' +
           std::to_string(stamp_ms) + '\n';
  }
  return out;
}

void TimeSeriesRecorder::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("TimeSeriesRecorder: cannot open " + path);
  const bool prometheus =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  out << (prometheus ? to_prometheus() : to_csv());
  if (!out) throw std::runtime_error("TimeSeriesRecorder: write failed for " + path);
}

}  // namespace ndnp::telemetry
