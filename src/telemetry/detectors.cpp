#include "telemetry/detectors.hpp"

#include <stdexcept>

namespace ndnp::telemetry {

std::string_view to_string(DetectorKind kind) noexcept {
  switch (kind) {
    case DetectorKind::kHitRateShift: return "hit_rate_shift";
    case DetectorKind::kArrivalRegularity: return "arrival_regularity";
    case DetectorKind::kDelayedHitRatio: return "delayed_hit_ratio";
  }
  return "?";
}

DetectorBank::DetectorBank(std::size_t buckets, const DetectorTuning& tuning,
                           std::uint8_t enabled)
    : tuning_(tuning), enabled_(enabled) {
  if (buckets == 0) throw std::invalid_argument("DetectorBank: buckets must be positive");
  buckets_.resize(buckets);
  for (BucketState& state : buckets_) {
    state.hit_rate.alpha = tuning_.ewma_alpha;
    state.delayed_ratio.alpha = tuning_.ewma_alpha;
    state.cusum.drift = tuning_.cusum_drift;
    state.cusum.threshold = tuning_.cusum_threshold;
    state.cusum.reference_alpha = tuning_.cusum_reference_alpha;
    state.cusum.two_sided = tuning_.cusum_two_sided;
  }
}

bool DetectorBank::cooled_down(BucketState& state, DetectorKind kind,
                               util::SimTime now) const noexcept {
  const auto k = static_cast<std::size_t>(kind);
  return state.last_alarm[k] == util::kTimeUnset ||
         now - state.last_alarm[k] >= tuning_.alarm_cooldown;
}

std::size_t DetectorBank::observe(std::uint64_t key, LookupOutcome outcome, util::SimTime now,
                                  AlarmEvent out[kDetectorKinds]) {
  BucketState& state = buckets_[bucket_of(key)];
  ++observations_;
  std::size_t fired = 0;
  const auto raise = [&](DetectorKind kind, double statistic) {
    if ((enabled_ & detector_bit(kind)) == 0) return;
    if (!cooled_down(state, kind, now)) return;
    state.last_alarm[static_cast<std::size_t>(kind)] = now;
    ++alarms_[static_cast<std::size_t>(kind)];
    out[fired++] = AlarmEvent{kind, statistic};
  };

  // Hit-rate shift: warm-up seeds the CUSUM reference from the bucket's
  // own early mean, then every exposed-hit indicator feeds the detector.
  const double hit = outcome == LookupOutcome::kExposedHit ? 1.0 : 0.0;
  state.hit_rate.observe(hit);
  if (state.hit_rate.count <= tuning_.warmup_samples) {
    state.warmup_sum += hit;
    if (state.hit_rate.count == tuning_.warmup_samples)
      state.cusum.arm(state.warmup_sum / static_cast<double>(tuning_.warmup_samples));
  } else if (state.cusum.observe(hit)) {
    raise(DetectorKind::kHitRateShift, state.cusum.statistic());
  }

  // Arrival regularity over the bucket's inter-arrival gaps.
  state.arrival.observe(now);
  if (state.arrival.gaps() >= tuning_.min_gap_samples &&
      state.arrival.regularity_cv() < tuning_.regularity_cv_max)
    raise(DetectorKind::kArrivalRegularity, state.arrival.regularity_cv());

  // Delayed share of cache-served traffic (the random-delay countermeasure
  // absorbing a probe stream shows up here).
  if (outcome == LookupOutcome::kExposedHit || outcome == LookupOutcome::kDelayedHit) {
    ++state.served;
    state.delayed_ratio.observe(outcome == LookupOutcome::kDelayedHit ? 1.0 : 0.0);
    if (state.served >= tuning_.min_served_samples &&
        state.delayed_ratio.value > tuning_.delayed_ratio_max)
      raise(DetectorKind::kDelayedHitRatio, state.delayed_ratio.value);
  }
  return fired;
}

double DetectorBank::bucket_hit_rate(std::size_t bucket) const {
  return buckets_.at(bucket).hit_rate.value;
}

double DetectorBank::max_cusum_statistic() const noexcept {
  double best = 0.0;
  for (const BucketState& state : buckets_)
    if (state.cusum.statistic() > best) best = state.cusum.statistic();
  return best;
}

void DetectorBank::merge_from(const DetectorBank& other) {
  if (other.buckets_.size() != buckets_.size())
    throw std::invalid_argument("DetectorBank::merge_from: bucket count mismatch");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    BucketState& mine = buckets_[i];
    const BucketState& theirs = other.buckets_[i];
    mine.hit_rate = EwmaEstimator::merged(mine.hit_rate, theirs.hit_rate);
    mine.warmup_sum += theirs.warmup_sum;
    mine.cusum = CusumDetector::merged(mine.cusum, theirs.cusum);
    mine.arrival = InterArrivalEstimator::merged(mine.arrival, theirs.arrival);
    mine.delayed_ratio = EwmaEstimator::merged(mine.delayed_ratio, theirs.delayed_ratio);
    mine.served += theirs.served;
    for (std::size_t k = 0; k < kDetectorKinds; ++k) {
      if (mine.last_alarm[k] == util::kTimeUnset)
        mine.last_alarm[k] = theirs.last_alarm[k];
      else if (theirs.last_alarm[k] != util::kTimeUnset)
        mine.last_alarm[k] = std::max(mine.last_alarm[k], theirs.last_alarm[k]);
    }
  }
  observations_ += other.observations_;
  for (std::size_t k = 0; k < kDetectorKinds; ++k) alarms_[k] += other.alarms_[k];
}

}  // namespace ndnp::telemetry
