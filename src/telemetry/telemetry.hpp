// TelemetryHub: the online observability layer, one hub per run.
//
// A hub owns a TimeSeriesRecorder (timeseries.hpp) plus two DetectorBanks
// (detectors.hpp) — one keyed by arrival face, one by content-prefix hash
// bucket — and exposes a single hot-path entry point, on_lookup(), that
//  1. folds the outcome into both banks,
//  2. emits a telemetry_alarm trace event for every detector that fires
//     (through NDNP_TRACE_EVENT, so captures join alarms against attack
//     ground truth; tools/telemetry_tool scores the join), and
//  3. lazily samples the time series at the configured sim-time cadence.
//
// Like the flight recorder, the hub only observes: no RNG draws, no
// scheduled events, no feedback into the simulation — arming telemetry
// never moves golden vectors, and the detector time series is
// byte-identical for any --jobs because every run records into its own hub
// (SweepTelemetryCapture mirrors runner::SweepTraceCapture).
//
// -DNDNP_TELEMETRY=0 compiles the hot-path hooks out of the forwarder and
// replayer entirely (arming becomes a no-op); the types here stay
// available so tools and tests still build — same convention as
// -DNDNP_TRACING=0.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/detectors.hpp"
#include "telemetry/timeseries.hpp"
#include "util/sim_time.hpp"

#ifndef NDNP_TELEMETRY
#define NDNP_TELEMETRY 1
#endif

namespace ndnp::util {
class MetricsRegistry;
}

namespace ndnp::telemetry {

struct TelemetryOptions {
  /// Time-series sampling cadence (sim time) and ring size.
  util::SimDuration sample_every = util::millis(10);
  std::size_t max_rows = 4096;
  /// Bucket counts for the two detector banks.
  std::size_t face_buckets = 32;
  std::size_t prefix_buckets = 64;
  /// Which detectors each bank may fire (detector_bit masks). The
  /// delayed-hit-ratio detector is face-only by default: it profiles a
  /// *requester* (a face whose cache-served traffic is dominated by the
  /// countermeasure's delays is probing protected content), while a prefix
  /// bucket dominated by one private object reaches the same ratio
  /// legitimately.
  std::uint8_t face_detectors = kAllDetectors;
  std::uint8_t prefix_detectors = static_cast<std::uint8_t>(
      detector_bit(DetectorKind::kHitRateShift) |
      detector_bit(DetectorKind::kArrivalRegularity));
  DetectorTuning tuning;
};

class TelemetryHub {
 public:
  explicit TelemetryHub(const TelemetryOptions& options = {},
                        std::string node_label = "telemetry");

  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  /// Hot path: fold one lookup outcome into the face and prefix banks and
  /// lazily sample the time series. Fired alarms become telemetry_alarm
  /// trace events on the currently bound tracer (detail carries detector,
  /// scope, bucket and the decision statistic).
  void on_lookup(std::uint64_t face_key, std::uint64_t prefix_hash, LookupOutcome outcome,
                 util::SimTime now);

  /// Sample the time series if a cadence boundary has passed (also called
  /// by on_lookup; expose it for callers with quiet phases).
  void maybe_sample(util::SimTime now) { recorder_.maybe_sample(now); }

  /// Register an extra gauge probe on the recorder (CS occupancy, PIT
  /// size, scheduler gauges, ... — the owner wires what it has).
  void add_probe(std::string name, TimeSeriesRecorder::Probe probe);

  [[nodiscard]] TimeSeriesRecorder& recorder() noexcept { return recorder_; }
  [[nodiscard]] const TimeSeriesRecorder& recorder() const noexcept { return recorder_; }
  [[nodiscard]] const DetectorBank& face_bank() const noexcept { return face_bank_; }
  [[nodiscard]] const DetectorBank& prefix_bank() const noexcept { return prefix_bank_; }
  [[nodiscard]] const TelemetryOptions& options() const noexcept { return options_; }
  [[nodiscard]] const std::string& node_label() const noexcept { return node_label_; }

  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }
  [[nodiscard]] std::uint64_t alarms_total() const noexcept {
    return face_bank_.alarms_total() + prefix_bank_.alarms_total();
  }
  [[nodiscard]] std::uint64_t alarms(DetectorKind kind) const noexcept {
    return face_bank_.alarms(kind) + prefix_bank_.alarms(kind);
  }

  /// Publish lookup/alarm counters into `registry` under `prefix`
  /// ("<prefix>.lookups", "<prefix>.alarms.<detector>", ...).
  void export_metrics(util::MetricsRegistry& registry, const std::string& prefix) const;

 private:
  TelemetryOptions options_;
  std::string node_label_;
  TimeSeriesRecorder recorder_;
  DetectorBank face_bank_;
  DetectorBank prefix_bank_;
  EwmaEstimator global_hit_rate_;
  std::uint64_t lookups_ = 0;
  std::uint64_t outcome_counts_[4] = {0, 0, 0, 0};
};

/// Per-run telemetry capture for a sweep (--telemetry-out plumbing); the
/// telemetry twin of runner::SweepTraceCapture. Each run samples into its
/// own hub; files are written after the sweep in run-index order, so the
/// exported detector time series is byte-identical for any --jobs value.
struct SweepTelemetryCapture {
  /// Output path; a ".prom" suffix selects Prometheus text exposition,
  /// anything else CSV. Multi-run sweeps splice ".runN" before the
  /// extension. Empty = capture in memory only (inspect via `runs`).
  std::string out_path;
  TelemetryOptions options;
  /// One hub per run, in run-index order; populated by prepare().
  std::vector<std::unique_ptr<TelemetryHub>> runs;

  /// Allocate a hub per run. Idempotent for a given run count.
  void prepare(std::size_t num_runs);
  [[nodiscard]] TelemetryHub* run_hub(std::size_t run_index) noexcept {
    return run_index < runs.size() ? runs[run_index].get() : nullptr;
  }
  /// Path run `run_index`'s series is written to (".runN" spliced in when
  /// the sweep has several runs).
  [[nodiscard]] std::string run_path(std::size_t run_index) const;
  /// Export every run's time series (no-op when out_path is empty).
  void write_files() const;
};

}  // namespace ndnp::telemetry
