// Allocation-free streaming estimator primitives for the online telemetry
// layer (docs/OBSERVABILITY.md, "Online telemetry").
//
// Everything here is plain-data and O(1) per observation: the detector
// banks in telemetry/detectors.hpp keep one estimator set per face / per
// prefix bucket inside a preallocated vector, and the forwarder hot path
// updates them with a handful of flops and no allocation (the telemetry
// bench in bench_micro_ops measures the armed cost against the forwarder
// round trip; BENCH_telemetry.json pins it under 5%).
//
// Merge semantics: each estimator carries an observation count and merges
// by count-weighted combination (CUSUM statistics take the max, alarm
// counts sum). The combine is mathematically associative — merged(a,
// merged(b, c)) == merged(merged(a, b), c) up to floating-point rounding —
// which is what the sharded replayer needs to fold per-shard detector
// state in shard order (tests/test_telemetry.cpp pins the property).
//
// Like the flight recorder, estimators only observe: they never draw from
// util::Rng and never feed anything back into the simulation, so arming
// telemetry cannot move golden vectors.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/sim_time.hpp"

namespace ndnp::telemetry {

/// Exponentially-weighted moving average of a scalar stream. The first
/// observation seeds the estimate directly (no zero-bias warm-up).
struct EwmaEstimator {
  double alpha = 0.05;
  double value = 0.0;
  std::uint64_t count = 0;

  void observe(double x) noexcept {
    ++count;
    value = count == 1 ? x : value + alpha * (x - value);
  }

  /// Count-weighted combination of two estimates (associative up to FP
  /// rounding; empty sides are identity).
  [[nodiscard]] static EwmaEstimator merged(const EwmaEstimator& a,
                                            const EwmaEstimator& b) noexcept {
    EwmaEstimator out;
    out.alpha = a.count != 0 ? a.alpha : b.alpha;
    out.count = a.count + b.count;
    if (out.count != 0)
      out.value = (a.value * static_cast<double>(a.count) +
                   b.value * static_cast<double>(b.count)) /
                  static_cast<double>(out.count);
    return out;
  }
};

/// CUSUM change-point detector on a scalar stream: accumulates deviations
/// from `reference` beyond a per-sample slack `drift` and fires when a
/// side's statistic exceeds `threshold`, then resets (so a sustained shift
/// keeps re-firing at a bounded rate instead of once). `two_sided = false`
/// tracks only downward shifts — the right mode for hit-rate streams,
/// where cache warm-up drifts the mean *up* and only a collapse is
/// anomalous. `reference_alpha > 0` makes the reference itself a slow EWMA
/// of the stream, so legitimate long-horizon drift (a cache saturating and
/// shedding hit rate over thousands of requests) is absorbed while an
/// abrupt shift outruns the adaptation and still accumulates. The caller
/// sets `reference` after its warm-up mean is known; observe() before that
/// is a no-op returning false.
struct CusumDetector {
  double drift = 0.08;
  double threshold = 4.0;
  double reference = 0.0;
  double reference_alpha = 0.0;
  bool armed = false;
  bool two_sided = true;
  double pos = 0.0;
  double neg = 0.0;
  std::uint64_t alarms = 0;

  void arm(double ref) noexcept {
    reference = ref;
    armed = true;
  }

  /// Returns true when this observation pushes a statistic past threshold.
  bool observe(double x) noexcept {
    if (!armed) return false;
    if (two_sided) pos = std::max(0.0, pos + (x - reference - drift));
    neg = std::max(0.0, neg + (reference - x - drift));
    if (reference_alpha > 0.0) reference += reference_alpha * (x - reference);
    if (pos > threshold || neg > threshold) {
      ++alarms;
      pos = 0.0;
      neg = 0.0;
      return true;
    }
    return false;
  }

  [[nodiscard]] double statistic() const noexcept { return std::max(pos, neg); }

  /// Merge: references combine by armed-side preference, statistics take
  /// the max (conservative union — a shift seen by either shard survives),
  /// alarm counts sum. Max and sum are exactly associative; the reference
  /// pick is deterministic (first armed side wins).
  [[nodiscard]] static CusumDetector merged(const CusumDetector& a,
                                            const CusumDetector& b) noexcept {
    CusumDetector out = a.armed ? a : b;
    out.pos = std::max(a.pos, b.pos);
    out.neg = std::max(a.neg, b.neg);
    out.alarms = a.alarms + b.alarms;
    return out;
  }
};

/// Inter-arrival regularity: EWMA of the gap and of its absolute deviation.
/// Machine-paced probing drives the coefficient of variation toward 0; for
/// Poisson arrivals the mean-absolute-deviation CV settles near 2/e ~ 0.74,
/// so a small threshold separates the two cleanly.
struct InterArrivalEstimator {
  util::SimTime last_arrival = util::kTimeUnset;
  EwmaEstimator gap;
  EwmaEstimator gap_abs_dev;

  void observe(util::SimTime now) noexcept {
    if (last_arrival != util::kTimeUnset && now >= last_arrival) {
      const double g = static_cast<double>(now - last_arrival);
      gap.observe(g);
      gap_abs_dev.observe(std::abs(g - gap.value));
    }
    last_arrival = now;
  }

  [[nodiscard]] std::uint64_t gaps() const noexcept { return gap.count; }

  /// Coefficient of variation proxy: mean |gap - mean| / mean gap.
  /// Returns a large sentinel before any gap is seen (never "regular").
  [[nodiscard]] double regularity_cv() const noexcept {
    if (gap.count == 0 || gap.value <= 0.0) return 1e9;
    return gap_abs_dev.value / gap.value;
  }

  /// Merge: gap statistics combine count-weighted; the later shard's last
  /// arrival wins (shards partition time-ordered streams by user, so the
  /// max is the right continuation point).
  [[nodiscard]] static InterArrivalEstimator merged(const InterArrivalEstimator& a,
                                                    const InterArrivalEstimator& b) noexcept {
    InterArrivalEstimator out;
    out.gap = EwmaEstimator::merged(a.gap, b.gap);
    out.gap_abs_dev = EwmaEstimator::merged(a.gap_abs_dev, b.gap_abs_dev);
    if (a.last_arrival == util::kTimeUnset)
      out.last_arrival = b.last_arrival;
    else if (b.last_arrival == util::kTimeUnset)
      out.last_arrival = a.last_arrival;
    else
      out.last_arrival = std::max(a.last_arrival, b.last_arrival);
    return out;
  }
};

}  // namespace ndnp::telemetry
