// TimeSeriesRecorder: sim-time-cadenced sampling of gauge probes into a
// bounded ring of rows, exported as CSV or Prometheus text exposition.
//
// Sampling model (docs/OBSERVABILITY.md, "Online telemetry"):
//  * Probes are registered once (name + read-only callback); the probe set
//    is frozen at the first sample so every row has the same columns.
//  * maybe_sample(now) is called from hot paths (forwarder lookups, replay
//    feeds). It emits one row per *crossed* cadence boundary, stamped at
//    the boundary time, reading the probes' current values. When several
//    boundaries pass between consecutive calls only the most recent one
//    gets a row — the rest are counted in missed_boundaries(). This lazy
//    scheme needs no scheduler events, so arming a recorder can never
//    perturb event order (golden vectors stay byte-identical).
//  * The ring keeps the most recent `max_rows` rows (flight-recorder
//    style); dropped_rows() counts overwrites.
//
// All output is canonical: times are integer nanoseconds, values print
// with "%.17g" (same convention as util::MetricsSnapshot::to_json), rows
// in time order — byte-identical across --jobs by construction since every
// run records into its own recorder.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/sim_time.hpp"

namespace ndnp::telemetry {

class TimeSeriesRecorder {
 public:
  using Probe = std::function<double()>;

  /// `sample_every` must be positive; `max_rows` = 0 keeps every row.
  explicit TimeSeriesRecorder(util::SimDuration sample_every = util::millis(10),
                              std::size_t max_rows = 4096);

  /// Register (or replace, by name) a gauge probe. Throws once the probe
  /// set is frozen by the first sample.
  void add_probe(std::string name, Probe probe);

  /// Emit a row for the most recent cadence boundary <= now, if any new
  /// boundary has been crossed since the last sample.
  void maybe_sample(util::SimTime now);

  /// Force one row stamped `t` (used for the final flush at end of run).
  void sample_at(util::SimTime t);

  [[nodiscard]] util::SimDuration sample_every() const noexcept { return cadence_; }
  [[nodiscard]] std::size_t probes() const noexcept { return names_.size(); }
  [[nodiscard]] std::size_t rows() const noexcept;
  [[nodiscard]] std::uint64_t missed_boundaries() const noexcept { return missed_; }
  [[nodiscard]] std::uint64_t dropped_rows() const noexcept { return dropped_; }

  /// CSV: header "t_ns,<probe>,..." then one row per sample, oldest first.
  [[nodiscard]] std::string to_csv() const;
  /// Prometheus text exposition of the latest sample: one gauge per probe,
  /// names sanitized and prefixed "ndnp_", timestamped in milliseconds.
  [[nodiscard]] std::string to_prometheus() const;
  /// Write to `path`: a ".prom" suffix selects Prometheus exposition,
  /// anything else CSV. Throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  void emit_row(util::SimTime t);

  util::SimDuration cadence_;
  std::size_t max_rows_;
  bool frozen_ = false;
  std::int64_t last_boundary_ = 0;  // boundary index of the last emitted row
  std::uint64_t missed_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::string> names_;
  std::vector<Probe> probes_;
  // Ring of rows: times_[i] with values row-major in values_ (stride =
  // probes()). head_ is the next overwrite slot once full.
  std::vector<util::SimTime> times_;
  std::vector<double> values_;
  std::size_t head_ = 0;
  bool full_ = false;
};

}  // namespace ndnp::telemetry
