#include "telemetry/telemetry.hpp"

#include <cstdio>

#include "util/metrics.hpp"
#include "util/tracing.hpp"

namespace ndnp::telemetry {

namespace {

constexpr const char* kOutcomeCounterNames[4] = {"exposed_hits", "delayed_hits",
                                                 "simulated_misses", "true_misses"};

}  // namespace

TelemetryHub::TelemetryHub(const TelemetryOptions& options, std::string node_label)
    : options_(options),
      node_label_(std::move(node_label)),
      recorder_(options.sample_every, options.max_rows),
      face_bank_(options.face_buckets, options.tuning, options.face_detectors),
      prefix_bank_(options.prefix_buckets, options.tuning, options.prefix_detectors) {
  global_hit_rate_.alpha = options_.tuning.ewma_alpha;
  // Built-in detector time series; owners layer their gauges (CS/PIT
  // occupancy, scheduler depth, ...) on top via add_probe before the first
  // sample freezes the column set.
  recorder_.add_probe("telemetry.lookups",
                      [this] { return static_cast<double>(lookups_); });
  recorder_.add_probe("telemetry.hit_rate_ewma", [this] { return global_hit_rate_.value; });
  for (std::size_t k = 0; k < kDetectorKinds; ++k) {
    const auto kind = static_cast<DetectorKind>(k);
    recorder_.add_probe("telemetry.alarms." + std::string(to_string(kind)),
                        [this, kind] { return static_cast<double>(alarms(kind)); });
  }
  recorder_.add_probe("telemetry.face_cusum_max",
                      [this] { return face_bank_.max_cusum_statistic(); });
  recorder_.add_probe("telemetry.prefix_cusum_max",
                      [this] { return prefix_bank_.max_cusum_statistic(); });
}

void TelemetryHub::add_probe(std::string name, TimeSeriesRecorder::Probe probe) {
  recorder_.add_probe(std::move(name), std::move(probe));
}

void TelemetryHub::on_lookup(std::uint64_t face_key, std::uint64_t prefix_hash,
                             LookupOutcome outcome, util::SimTime now) {
  ++lookups_;
  ++outcome_counts_[static_cast<std::size_t>(outcome)];
  global_hit_rate_.observe(outcome == LookupOutcome::kExposedHit ? 1.0 : 0.0);

  AlarmEvent fired[kDetectorKinds];
  const auto emit = [&](const char* scope, const DetectorBank& bank, std::uint64_t key,
                        std::int64_t face, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      char detail[128];
      std::snprintf(detail, sizeof detail, "detector=%s scope=%s bucket=%zu stat=%.4f",
                    std::string(to_string(fired[i].kind)).c_str(), scope, bank.bucket_of(key),
                    fired[i].statistic);
      NDNP_TRACE_EVENT(util::TraceEventType::kTelemetryAlarm, node_label_, now, std::string(),
                       std::string(detail), face, static_cast<std::int64_t>(fired[i].kind),
                       static_cast<std::int64_t>(bank.bucket_of(key)));
    }
  };

  emit("face", face_bank_, face_key, static_cast<std::int64_t>(face_key),
       face_bank_.observe(face_key, outcome, now, fired));
  emit("prefix", prefix_bank_, prefix_hash, -1,
       prefix_bank_.observe(prefix_hash, outcome, now, fired));

  recorder_.maybe_sample(now);
}

void TelemetryHub::export_metrics(util::MetricsRegistry& registry,
                                  const std::string& prefix) const {
  registry.counter(prefix + ".lookups").inc(lookups_);
  for (std::size_t i = 0; i < 4; ++i)
    registry.counter(prefix + ".outcome." + kOutcomeCounterNames[i]).inc(outcome_counts_[i]);
  for (std::size_t k = 0; k < kDetectorKinds; ++k) {
    const auto kind = static_cast<DetectorKind>(k);
    registry.counter(prefix + ".alarms." + std::string(to_string(kind))).inc(alarms(kind));
  }
  registry.counter(prefix + ".samples").inc(recorder_.rows());
  registry.counter(prefix + ".missed_boundaries").inc(recorder_.missed_boundaries());
}

void SweepTelemetryCapture::prepare(std::size_t num_runs) {
  if (runs.size() == num_runs) return;
  runs.clear();
  runs.reserve(num_runs);
  for (std::size_t i = 0; i < num_runs; ++i)
    runs.push_back(std::make_unique<TelemetryHub>(options));
}

std::string SweepTelemetryCapture::run_path(std::size_t run_index) const {
  if (runs.size() <= 1) return out_path;
  // Same ".runN" splice as SweepTraceCapture so the ".prom" suffix
  // dispatch in write_file still works: t.csv -> t.run3.csv.
  const std::size_t slash = out_path.find_last_of('/');
  const std::size_t dot = out_path.find_last_of('.');
  const std::string tag = ".run" + std::to_string(run_index);
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return out_path + tag;
  return out_path.substr(0, dot) + tag + out_path.substr(dot);
}

void SweepTelemetryCapture::write_files() const {
  if (out_path.empty()) return;
  for (std::size_t i = 0; i < runs.size(); ++i)
    runs[i]->recorder().write_file(run_path(i));
}

}  // namespace ndnp::telemetry
