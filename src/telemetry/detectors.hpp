// Streaming per-bucket anomaly detectors over cache-lookup outcomes.
//
// A DetectorBank keeps one estimator set (estimators.hpp) per bucket in a
// preallocated vector — banks are keyed by arrival face or by content
// prefix hash — and judges every observation with three detectors derived
// from the paper's own attack surface:
//
//  * hit_rate_shift      — CUSUM change-point on the exposed-hit indicator.
//                          Sequential probing (Section IV) populates then
//                          re-probes content, stepping a bucket's hit rate;
//                          the CUSUM catches the step against the bucket's
//                          own warm-up baseline.
//  * arrival_regularity  — machine-paced probes arrive with near-constant
//                          gaps; honest (Poisson-like) traffic keeps the
//                          gap CV near 2/e. Fires while the CV stays under
//                          the tuning threshold.
//  * delayed_hit_ratio   — keyed to the paper's random-delay countermeasure:
//                          a requester whose cache-served traffic is mostly
//                          *delayed* hits is hammering protected (private)
//                          content — the countermeasure is absorbing a
//                          probe stream.
//
// Alarms are rate-limited per (bucket, detector) by a sim-time cooldown so
// a sustained anomaly re-fires at a bounded, window-friendly rate. The
// caller (telemetry::TelemetryHub) turns fired alarms into telemetry_alarm
// trace events; this layer stays trace- and simulation-free.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "telemetry/estimators.hpp"
#include "util/sim_time.hpp"

namespace ndnp::telemetry {

enum class DetectorKind : std::uint8_t {
  kHitRateShift = 0,
  kArrivalRegularity = 1,
  kDelayedHitRatio = 2,
};
inline constexpr std::size_t kDetectorKinds = 3;

/// Bit for `kind` in a DetectorBank enable mask.
[[nodiscard]] constexpr std::uint8_t detector_bit(DetectorKind kind) noexcept {
  return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(kind));
}
inline constexpr std::uint8_t kAllDetectors = 0b111;

[[nodiscard]] std::string_view to_string(DetectorKind kind) noexcept;

/// Lookup outcome as seen by the detectors (mirrors
/// core::RequestOutcome::Kind / the forwarder's disposition).
enum class LookupOutcome : std::uint8_t {
  kExposedHit,
  kDelayedHit,
  kSimulatedMiss,
  kTrueMiss,
};

/// Detector knobs (docs/OBSERVABILITY.md documents each one).
struct DetectorTuning {
  /// EWMA smoothing for hit-rate / delayed-ratio estimators.
  double ewma_alpha = 0.05;
  /// Observations that seed a bucket's hit-rate baseline before the CUSUM
  /// arms. Larger = more tolerant of cache warm-up drift.
  std::uint64_t warmup_samples = 256;
  /// CUSUM per-sample slack: sustained mean shifts below this are free.
  /// Together with the threshold this bounds the Bernoulli false-alarm
  /// rate at roughly exp(-2 * drift * threshold / sigma^2) per reset
  /// cycle — keep drift * threshold well above sigma^2 (<= 0.25).
  double cusum_drift = 0.15;
  /// CUSUM alarm threshold on the accumulated statistic.
  double cusum_threshold = 12.0;
  /// Adaptation rate of the CUSUM reference after arming (slow EWMA; a
  /// ~300-sample time constant). Absorbs honest long-horizon hit-rate
  /// drift — cache saturation — while abrupt collapses still accumulate.
  double cusum_reference_alpha = 0.003;
  /// false (default) = downward-only CUSUM: cache warm-up legitimately
  /// drifts hit rates *up*, so only a collapse below the warm-up baseline
  /// (the cache-pollution signature) alarms. true restores both sides.
  bool cusum_two_sided = false;
  /// Gaps needed before the regularity detector judges a bucket.
  std::uint64_t min_gap_samples = 24;
  /// Fire arrival_regularity while gap CV stays below this (Poisson ~0.74).
  double regularity_cv_max = 0.15;
  /// Cache-served observations before delayed_hit_ratio judges a bucket.
  std::uint64_t min_served_samples = 64;
  /// Fire delayed_hit_ratio when the delayed share of cache-served
  /// traffic exceeds this. High on purpose: honest traffic with temporal
  /// locality produces delayed-hit streaks on private objects; only a
  /// requester whose served traffic is *dominated* by delayed hits is
  /// hammering protected content.
  double delayed_ratio_max = 0.9;
  /// Per-(bucket, detector) sim-time alarm cooldown.
  util::SimDuration alarm_cooldown = util::millis(10);
};

/// One alarm fired by observe(); `statistic` is the detector's current
/// decision statistic (CUSUM level, gap CV, delayed ratio).
struct AlarmEvent {
  DetectorKind kind = DetectorKind::kHitRateShift;
  double statistic = 0.0;
};

class DetectorBank {
 public:
  /// `buckets` fixes the bank size up front — per-observation updates are
  /// allocation-free from then on. `enabled` masks which detectors this
  /// bank may fire (detector_bit); disabled detectors still update their
  /// estimators (the time series stays complete) but never alarm.
  DetectorBank(std::size_t buckets, const DetectorTuning& tuning,
               std::uint8_t enabled = kAllDetectors);

  /// Fold one lookup outcome into bucket `key % buckets()`. Fired alarms
  /// (at most one per detector) are written to `out`; returns how many.
  std::size_t observe(std::uint64_t key, LookupOutcome outcome, util::SimTime now,
                      AlarmEvent out[kDetectorKinds]);

  [[nodiscard]] std::size_t buckets() const noexcept { return buckets_.size(); }
  [[nodiscard]] std::size_t bucket_of(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(key % buckets_.size());
  }
  [[nodiscard]] std::uint64_t observations() const noexcept { return observations_; }
  [[nodiscard]] std::uint64_t alarms(DetectorKind kind) const noexcept {
    return alarms_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t alarms_total() const noexcept {
    return alarms_[0] + alarms_[1] + alarms_[2];
  }

  /// Current hit-rate EWMA of a bucket (diagnostic / time-series probe).
  [[nodiscard]] double bucket_hit_rate(std::size_t bucket) const;
  /// Largest CUSUM statistic across all buckets (time-series probe).
  [[nodiscard]] double max_cusum_statistic() const noexcept;

  /// Fold another bank's per-bucket state into this one (same bucket count
  /// and tuning required; used to combine per-shard banks). Associative
  /// across banks up to FP rounding — see estimators.hpp.
  void merge_from(const DetectorBank& other);

 private:
  struct BucketState {
    EwmaEstimator hit_rate;
    double warmup_sum = 0.0;
    CusumDetector cusum;
    InterArrivalEstimator arrival;
    EwmaEstimator delayed_ratio;
    std::uint64_t served = 0;
    util::SimTime last_alarm[kDetectorKinds] = {util::kTimeUnset, util::kTimeUnset,
                                                util::kTimeUnset};
  };

  [[nodiscard]] bool cooled_down(BucketState& state, DetectorKind kind,
                                 util::SimTime now) const noexcept;

  DetectorTuning tuning_;
  std::uint8_t enabled_;
  std::vector<BucketState> buckets_;
  std::uint64_t observations_ = 0;
  std::uint64_t alarms_[kDetectorKinds] = {0, 0, 0};
};

}  // namespace ndnp::telemetry
