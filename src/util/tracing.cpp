#include "util/tracing.hpp"

#include <chrono>
#include <stdexcept>

#include "util/metrics.hpp"

namespace ndnp::util {

namespace {

thread_local Tracer* t_current = nullptr;

}  // namespace

std::string_view to_string(TraceEventType type) noexcept {
  switch (type) {
    case TraceEventType::kInterestTx: return "interest_tx";
    case TraceEventType::kInterestRx: return "interest_rx";
    case TraceEventType::kDataTx: return "data_tx";
    case TraceEventType::kDataRx: return "data_rx";
    case TraceEventType::kNackTx: return "nack_tx";
    case TraceEventType::kNackRx: return "nack_rx";
    case TraceEventType::kLinkEnqueue: return "link_enqueue";
    case TraceEventType::kLinkDequeue: return "link_dequeue";
    case TraceEventType::kLinkDrop: return "link_drop";
    case TraceEventType::kCsLookup: return "cs_lookup";
    case TraceEventType::kCsInsert: return "cs_insert";
    case TraceEventType::kCsEvict: return "cs_evict";
    case TraceEventType::kPitCreate: return "pit_create";
    case TraceEventType::kPitAggregate: return "pit_aggregate";
    case TraceEventType::kPitSatisfy: return "pit_satisfy";
    case TraceEventType::kPitExpire: return "pit_expire";
    case TraceEventType::kPolicyDecision: return "policy_decision";
    case TraceEventType::kAttackProbe: return "attack_probe";
    case TraceEventType::kReplayRequest: return "replay_request";
    case TraceEventType::kFaultInject: return "fault_inject";
    case TraceEventType::kTelemetryAlarm: return "telemetry_alarm";
    case TraceEventType::kSpan: return "span";
    case TraceEventType::kMark: return "mark";
  }
  return "?";
}

std::string_view default_component(TraceEventType type) noexcept {
  switch (type) {
    case TraceEventType::kInterestTx:
    case TraceEventType::kDataTx:
    case TraceEventType::kNackTx:
    case TraceEventType::kLinkEnqueue:
    case TraceEventType::kLinkDequeue:
    case TraceEventType::kLinkDrop:
      return "link";
    case TraceEventType::kInterestRx:
    case TraceEventType::kDataRx:
    case TraceEventType::kNackRx:
    case TraceEventType::kPitCreate:
    case TraceEventType::kPitAggregate:
    case TraceEventType::kPitSatisfy:
    case TraceEventType::kPitExpire:
      return "forwarder";
    case TraceEventType::kCsLookup:
    case TraceEventType::kCsInsert:
    case TraceEventType::kCsEvict:
      return "cs";
    case TraceEventType::kPolicyDecision:
      return "policy";
    case TraceEventType::kAttackProbe:
      return "attack";
    case TraceEventType::kReplayRequest:
      return "replay";
    case TraceEventType::kFaultInject:
      return "fault";
    case TraceEventType::kTelemetryAlarm:
      return "telemetry";
    case TraceEventType::kSpan:
      return "profile";
    case TraceEventType::kMark:
      return "mark";
  }
  return "?";
}

Tracer::Tracer(std::size_t ring_capacity) : capacity_(ring_capacity) {
  if (capacity_ != 0) ring_.reserve(capacity_);
}

std::uint32_t Tracer::intern(std::string_view label) {
  const auto it = label_ids_.find(label);
  if (it != label_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(labels_.size());
  labels_.emplace_back(label);
  label_ids_.emplace(labels_.back(), id);
  return id;
}

const std::string& Tracer::label(std::uint32_t id) const {
  if (id >= labels_.size()) throw std::out_of_range("Tracer::label: unknown id");
  return labels_[id];
}

void Tracer::record(TraceEventType type, std::string_view node, util::SimTime time,
                    std::string name, std::string detail, std::int64_t face, std::int64_t a,
                    std::int64_t b) {
  if (!enabled_) return;
  if (!filter_.empty() && !name.empty() &&
      name.compare(0, filter_.size(), filter_) != 0) {
    ++filtered_;
    ++dropped_;
    return;
  }
  TraceEvent ev;
  ev.time = time;
  ev.type = type;
  ev.node = intern(node);
  ev.comp = intern(default_component(type));
  ev.face = face;
  ev.name = std::move(name);
  ev.detail = std::move(detail);
  ev.a = a;
  ev.b = b;
  last_time_ = time;
  ++total_;
  if (capacity_ == 0 || ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[head_] = std::move(ev);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

void Tracer::record_span(std::string_view node, std::string_view comp, std::string_view label,
                         std::int64_t wall_ns) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.time = last_time_;
  ev.type = TraceEventType::kSpan;
  ev.node = intern(node);
  ev.comp = intern(comp);
  ev.name.assign(label);
  ev.a = wall_ns;
  ++total_;
  if (capacity_ == 0 || ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[head_] = std::move(ev);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
  if (profile_ != nullptr) {
    // Wall micros, clamped by the histogram's edge bins.
    std::string metric = "profile.";
    metric += comp;
    metric += '.';
    metric += label;
    metric += "_us";
    profile_->histogram(metric, 0.0, 10'000.0, 100)
        .add(static_cast<double>(wall_ns) / 1'000.0);
  }
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (capacity_ != 0 && ring_.size() == capacity_) {
    // Ring is full: oldest event sits at head_.
    for (std::size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(head_ + i) % ring_.size()]);
  } else {
    out = ring_;
  }
  return out;
}

void Tracer::clear() {
  ring_.clear();
  head_ = 0;
  total_ = 0;
  dropped_ = 0;
  filtered_ = 0;
  last_time_ = kTimeZero;
}

Tracer* Tracer::current() noexcept { return t_current; }

TracerBinding::TracerBinding(Tracer* tracer) noexcept : previous_(t_current) {
  t_current = tracer;
}

TracerBinding::~TracerBinding() { t_current = previous_; }

std::int64_t wall_clock_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ScopedTraceSpan::ScopedTraceSpan(const char* node, const char* comp,
                                 const char* label) noexcept {
  Tracer* tracer = Tracer::current();
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  node_ = node;
  comp_ = comp;
  label_ = label;
  start_ns_ = wall_clock_ns();
}

ScopedTraceSpan::~ScopedTraceSpan() {
  if (tracer_ == nullptr) return;
  tracer_->record_span(node_, comp_, label_, wall_clock_ns() - start_ns_);
}

}  // namespace ndnp::util
