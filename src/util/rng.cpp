#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ndnp::util {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Xoshiro256::result_type Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (void)next();
    }
  }
  s_ = acc;
}

Rng Rng::fork() noexcept {
  // A fresh generator seeded from this stream; SplitMix64 inside the
  // Xoshiro256 constructor decorrelates nearby seeds.
  return Rng(next_u64());
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's method: multiply into 128 bits and reject the biased sliver.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 2^64 range (lo = INT64_MIN, hi = INT64_MAX).
  const std::uint64_t draw = (span == 0) ? next_u64() : uniform_u64(span);
  return lo + static_cast<std::int64_t>(draw);
}

double Rng::uniform01() noexcept {
  // 53 random bits scaled into [0,1); the canonical doubles construction.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform01(); }

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double lambda) noexcept {
  assert(lambda > 0.0);
  // Inverse CDF; 1 - U avoids log(0).
  return -std::log(1.0 - uniform01()) / lambda;
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller, using only one of the pair so the generator state advances
  // by a fixed amount per call.
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) noexcept { return std::exp(normal(mu, sigma)); }

std::uint64_t Rng::geometric(double alpha) noexcept {
  assert(alpha > 0.0 && alpha < 1.0);
  // Inverse CDF: floor(log(U) / log(alpha)).
  const double u = 1.0 - uniform01();  // in (0, 1]
  const double k = std::floor(std::log(u) / std::log(alpha));
  return k < 0.0 ? 0 : static_cast<std::uint64_t>(k);
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be positive");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: exponent must be non-negative");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    acc += std::pow(static_cast<double>(r), -s);
    cdf_[r - 1] = acc;
  }
  const double total = acc;
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving the last bin short
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank == 0 || rank > cdf_.size()) throw std::out_of_range("ZipfSampler::pmf rank");
  const double hi = cdf_[rank - 1];
  const double lo = rank == 1 ? 0.0 : cdf_[rank - 2];
  return hi - lo;
}

}  // namespace ndnp::util
