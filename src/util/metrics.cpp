#include "util/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <stdexcept>

namespace ndnp::util {

namespace {

/// Round-trip-exact double formatting, locale-independent.
std::string format_double(double x) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

/// JSON string escaping for metric names (which are plain dotted
/// identifiers in practice; this keeps the exporter safe anyway). Quotes
/// and backslashes get a backslash, control characters the \uXXXX form,
/// so the output is always valid JSON.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void append_histogram_json(std::string& out, const HistogramData& hist) {
  out += "{\"lo\":" + format_double(hist.lo) + ",\"hi\":" + format_double(hist.hi) +
         ",\"counts\":[";
  for (std::size_t i = 0; i < hist.counts.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(hist.counts[i]);
  }
  out += "]}";
}

}  // namespace

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins) {
  if (!(lo < hi) || bins == 0)
    throw std::invalid_argument("HistogramMetric: need lo < hi and bins > 0");
}

void HistogramMetric::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::size_t bin = 0;
  if (x >= hi_) {
    bin = counts_.size() - 1;
  } else if (x > lo_) {
    bin = std::min(static_cast<std::size_t>((x - lo_) / width), counts_.size() - 1);
  }
  counts_[bin].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t HistogramData::total() const noexcept {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : counts) sum += c;
  return sum;
}

bool HistogramData::same_shape(const HistogramData& other) const noexcept {
  return lo == other.lo && hi == other.hi && counts.size() == other.counts.size();
}

double HistogramData::approx_mean() const noexcept {
  const std::uint64_t n = total();
  if (n == 0 || counts.empty()) return 0.0;
  const double width = (hi - lo) / static_cast<double>(counts.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i)
    sum += static_cast<double>(counts[i]) * (lo + (static_cast<double>(i) + 0.5) * width);
  return sum / static_cast<double>(n);
}

HistogramData merge(const HistogramData& a, const HistogramData& b) {
  if (!a.same_shape(b))
    throw std::invalid_argument("merge: histogram shapes differ");
  HistogramData out = a;
  for (std::size_t i = 0; i < out.counts.size(); ++i) out.counts[i] += b.counts[i];
  return out;
}

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts) {
  MetricsSnapshot out;
  for (const MetricsSnapshot& part : parts) {
    for (const auto& [name, value] : part.counters) out.counters[name] += value;
    for (const auto& [name, value] : part.gauges) out.gauges[name] += value;
    for (const auto& [name, hist] : part.histograms) {
      const auto it = out.histograms.find(name);
      if (it == out.histograms.end())
        out.histograms[name] = hist;
      else
        it->second = merge(it->second, hist);
    }
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + escape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + escape(name) + "\":" + format_double(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + escape(name) + "\":";
    append_histogram_json(out, hist);
  }
  out += "}}";
  return out;
}

bool MetricsSnapshot::operator==(const MetricsSnapshot& other) const {
  if (counters != other.counters || gauges != other.gauges) return false;
  if (histograms.size() != other.histograms.size()) return false;
  for (auto it = histograms.begin(), jt = other.histograms.begin(); it != histograms.end();
       ++it, ++jt) {
    if (it->first != jt->first || !it->second.same_shape(jt->second) ||
        it->second.counts != jt->second.counts)
      return false;
  }
  return true;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, double lo, double hi,
                                            std::size_t bins) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<HistogramMetric>(lo, hi, bins);
  } else if (slot->lo() != lo || slot->hi() != hi || slot->bins() != bins) {
    throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                "' re-registered with a different shape");
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) snap.counters[name] = counter->value();
  for (const auto& [name, hist] : histograms_) {
    HistogramData data;
    data.lo = hist->lo();
    data.hi = hist->hi();
    data.counts.resize(hist->bins());
    for (std::size_t i = 0; i < hist->bins(); ++i) data.counts[i] = hist->count(i);
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void MetricAggregate::add(double x) {
  stats.add(x);
  samples.add(x);
}

SweepAggregate SweepAggregate::from_runs(const std::vector<MetricsSnapshot>& runs) {
  SweepAggregate agg;
  agg.runs = runs.size();
  // Counter names missing from some runs count as 0 there, so the mean is
  // over all runs; gauges (derived ratios) are only meaningful where
  // computed and skip absent runs.
  std::set<std::string> counter_names;
  for (const MetricsSnapshot& run : runs)
    for (const auto& [name, value] : run.counters) {
      (void)value;
      counter_names.insert(name);
    }
  for (const std::string& name : counter_names) {
    MetricAggregate& metric = agg.counters[name];
    for (const MetricsSnapshot& run : runs) {
      const auto it = run.counters.find(name);
      metric.add(it == run.counters.end() ? 0.0 : static_cast<double>(it->second));
    }
  }
  for (const MetricsSnapshot& run : runs) {
    for (const auto& [name, value] : run.gauges) agg.gauges[name].add(value);
    for (const auto& [name, hist] : run.histograms) {
      const auto it = agg.histograms.find(name);
      if (it == agg.histograms.end())
        agg.histograms[name] = hist;
      else
        it->second = merge(it->second, hist);
    }
  }
  return agg;
}

namespace {

void append_aggregate_json(std::string& out, const std::string& name,
                           const MetricAggregate& metric) {
  out += '"' + escape(name) + "\":{";
  out += "\"count\":" + std::to_string(metric.stats.count());
  out += ",\"mean\":" + format_double(metric.stats.mean());
  out += ",\"stddev\":" + format_double(metric.stats.stddev());
  out += ",\"min\":" + format_double(metric.stats.min());
  out += ",\"max\":" + format_double(metric.stats.max());
  out += ",\"p50\":" + format_double(metric.percentile(0.5));
  out += ",\"p95\":" + format_double(metric.percentile(0.95));
  out += ",\"p99\":" + format_double(metric.percentile(0.99));
  out += '}';
}

}  // namespace

std::string SweepAggregate::to_json() const {
  std::string out = "{\"runs\":" + std::to_string(runs) + ",\"counters\":{";
  bool first = true;
  for (const auto& [name, metric] : counters) {
    if (!first) out += ',';
    first = false;
    append_aggregate_json(out, name, metric);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, metric] : gauges) {
    if (!first) out += ',';
    first = false;
    append_aggregate_json(out, name, metric);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + escape(name) + "\":";
    append_histogram_json(out, hist);
  }
  out += "}}";
  return out;
}

}  // namespace ndnp::util
