#include "util/invariant.hpp"

#include <cstdarg>
#include <cstdio>

namespace ndnp::util {

namespace {

thread_local std::uint64_t t_violations = 0;

std::string make_what(const std::string& component, const std::string& message,
                      const char* file, int line) {
  std::string what = "invariant violated [";
  what += component;
  what += "] ";
  what += message;
  what += " (";
  what += file;
  what += ":";
  what += std::to_string(line);
  what += ")";
  return what;
}

}  // namespace

InvariantViolation::InvariantViolation(std::string component, std::string message,
                                       const char* file, int line)
    : std::logic_error(make_what(component, message, file, line)),
      component_(std::move(component)),
      message_(std::move(message)),
      file_(file),
      line_(line) {}

std::uint64_t invariant_violations() noexcept { return t_violations; }

void invariant_failed(const char* component, const char* file, int line, const char* fmt,
                      ...) {
  char buf[512];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  ++t_violations;
  throw InvariantViolation(component, buf, file, line);
}

}  // namespace ndnp::util
