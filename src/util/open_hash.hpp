// Open-addressing hash table keyed by caller-supplied 64-bit hashes.
//
// The CS and PIT hot paths key their tables on ndn::Name::hash64(), a
// deterministic FNV-1a digest that callers compute once and cache — this
// container never hashes values itself. It stores slots in a flat
// power-of-two array with linear probing and tombstone deletion, so
//
//  - find/insert/erase are O(1) expected with a single contiguous probe
//    run (no per-node allocation, no pointer chasing, no ordered
//    string-vector comparisons);
//  - erase never relocates other slots (tombstones), so pointers returned
//    by find() survive unrelated erases; only insert() may rehash and
//    invalidate pointers into the table;
//  - iteration order (for_each) is slot order, a pure function of the
//    inserted hashes and the op sequence — deterministic across runs and
//    platforms, never dependent on pointer values (this is why the
//    determinism guard bans std::unordered_* but this table is fine).
//
// Two different keys may share a 64-bit hash; every lookup therefore takes
// an equality predicate over the stored value, and insert() probes past
// hash-equal-but-key-unequal slots. Callers that deliberately want
// hash-level buckets (the CS prefix index) pass an always-true predicate.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

namespace ndnp::util {

/// T must be default-constructible and movable. One table instance is not
/// thread-safe; confine it to one run/thread like the rest of the sim.
template <typename T>
class OpenHashTable {
 public:
  OpenHashTable() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Find the value stored under (hash, eq). Returns nullptr if absent.
  /// `eq(const T&)` is only evaluated on slots whose stored hash matches.
  template <typename Eq>
  [[nodiscard]] T* find(std::uint64_t hash, Eq&& eq) noexcept {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = index_of(hash);; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.state == State::kEmpty) return nullptr;
      if (slot.state == State::kFull && slot.hash == hash && eq(slot.value))
        return &slot.value;
    }
  }

  template <typename Eq>
  [[nodiscard]] const T* find(std::uint64_t hash, Eq&& eq) const noexcept {
    return const_cast<OpenHashTable*>(this)->find(hash, std::forward<Eq>(eq));
  }

  /// Insert `value` under `hash` if no existing slot matches (hash, eq);
  /// returns {slot, true} on insertion, {existing slot, false} otherwise.
  /// May rehash (growth or tombstone purge) — pointers into the table
  /// obtained earlier are invalidated on return.first != nullptr... always
  /// assume invalidation after any emplace.
  template <typename Eq>
  std::pair<T*, bool> emplace(std::uint64_t hash, T value, Eq&& eq) {
    reserve_one();
    const std::size_t mask = slots_.size() - 1;
    std::size_t insert_at = slots_.size();  // first tombstone on the probe path
    for (std::size_t i = index_of(hash);; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.state == State::kEmpty) {
        Slot& target = slots_[insert_at == slots_.size() ? i : insert_at];
        if (target.state == State::kTombstone) --tombstones_;
        target.state = State::kFull;
        target.hash = hash;
        target.value = std::move(value);
        ++size_;
        return {&target.value, true};
      }
      if (slot.state == State::kTombstone) {
        if (insert_at == slots_.size()) insert_at = i;
      } else if (slot.hash == hash && eq(slot.value)) {
        return {&slot.value, false};
      }
    }
  }

  /// Erase the value under (hash, eq). Tombstone deletion: no other slot
  /// moves, so outstanding pointers to *other* values stay valid. Returns
  /// false if absent.
  template <typename Eq>
  bool erase(std::uint64_t hash, Eq&& eq) noexcept {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = index_of(hash);; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.state == State::kEmpty) return false;
      if (slot.state == State::kFull && slot.hash == hash && eq(slot.value)) {
        slot.state = State::kTombstone;
        slot.value = T{};  // release resources eagerly
        --size_;
        ++tombstones_;
        return true;
      }
    }
  }

  /// Erase like erase(), but move the stored value out to the caller
  /// instead of destroying it (e.g. to recycle node allocations). Returns
  /// a default-constructed T if absent; check with `found`.
  template <typename Eq>
  T extract(std::uint64_t hash, Eq&& eq, bool* found = nullptr) noexcept {
    if (found) *found = false;
    if (slots_.empty()) return T{};
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = index_of(hash);; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.state == State::kEmpty) return T{};
      if (slot.state == State::kFull && slot.hash == hash && eq(slot.value)) {
        slot.state = State::kTombstone;
        T out = std::move(slot.value);
        slot.value = T{};
        --size_;
        ++tombstones_;
        if (found) *found = true;
        return out;
      }
    }
  }

  void clear() noexcept {
    slots_.clear();
    size_ = 0;
    tombstones_ = 0;
  }

  /// Visit every stored value in slot order (deterministic; see header).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& slot : slots_)
      if (slot.state == State::kFull) fn(slot.value);
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_)
      if (slot.state == State::kFull) fn(slot.value);
  }

 private:
  enum class State : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

  struct Slot {
    std::uint64_t hash = 0;
    T value{};
    State state = State::kEmpty;
  };

  /// Finalizer-style mix so that hashes whose entropy sits in high bits
  /// still spread over the low index bits (FNV's low bits are decent, but
  /// masking alone would make probe clustering depend on the hash scheme).
  [[nodiscard]] std::size_t index_of(std::uint64_t hash) const noexcept {
    hash ^= hash >> 33;
    hash *= 0xff51afd7ed558ccdULL;
    hash ^= hash >> 33;
    return static_cast<std::size_t>(hash) & (slots_.size() - 1);
  }

  /// Keep (full + tombstones) under 7/8 of capacity; grow ×2 when live
  /// entries cross 1/2, otherwise rehash in place to purge tombstones.
  void reserve_one() {
    if (slots_.empty()) {
      slots_.resize(kInitialCapacity);
      return;
    }
    if ((size_ + tombstones_ + 1) * 8 <= slots_.size() * 7) return;
    const std::size_t new_capacity =
        (size_ + 1) * 2 > slots_.size() ? slots_.size() * 2 : slots_.size();
    std::vector<Slot> old = std::move(slots_);
    slots_ = std::vector<Slot>();
    slots_.resize(new_capacity);
    tombstones_ = 0;
    const std::size_t mask = slots_.size() - 1;
    for (Slot& slot : old) {
      if (slot.state != State::kFull) continue;
      std::size_t i = index_of(slot.hash);
      while (slots_[i].state == State::kFull) i = (i + 1) & mask;
      slots_[i].state = State::kFull;
      slots_[i].hash = slot.hash;
      slots_[i].value = std::move(slot.value);
    }
  }

  static constexpr std::size_t kInitialCapacity = 16;

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace ndnp::util
