// Packet-level flight recorder: a per-run, deterministic event tracer.
//
// The paper's attacks are *observability* attacks — an adversary infers
// cache state purely from Interest/Data timing — and the countermeasures
// trade that signal away. Debugging either side needs event-level truth:
// why a probe hit or missed, which entry was evicted, what the policy
// decided and with which k_C. The MetricsRegistry (util/metrics.hpp) gives
// end-of-run aggregates; this module records the *sequence*.
//
// Model:
//  - A `Tracer` is a compact append/ring buffer of typed `TraceEvent`
//    records stamped with SimTime plus interned node/component labels.
//    One tracer per run, used from one thread (runs are single-threaded;
//    the sweep runner gives every run its own tracer on its own worker).
//  - Instrumentation points go through the NDNP_TRACE_EVENT /
//    NDNP_TRACE_SCOPE macros, which consult the thread-local *bound*
//    tracer (`Tracer::current()`, set via TracerBinding RAII). No binding
//    or a disabled tracer means the macro arguments are never evaluated:
//    the disabled path is one thread-local load and a branch — no
//    allocation, no name formatting (tests/test_tracing.cpp asserts the
//    no-allocation property with a counting operator new).
//  - Compiling with -DNDNP_TRACING=0 removes the instrumentation entirely
//    (macros expand to `(void)0`); the Tracer type itself stays available
//    so sinks and tools still build.
//
// The tracer only observes: it never draws from util::Rng, never schedules
// events and never feeds results back into the simulation, so golden
// vectors are byte-identical with tracing disabled, enabled, or compiled
// out (tests/test_golden.cpp and CI enforce this).
//
// Exporters (JSONL, Chrome trace-event JSON for Perfetto, the attack
// forensics join) live in sim/trace_sinks.hpp; the CLI is
// tools/trace_inspect.cpp. See docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/sim_time.hpp"

#ifndef NDNP_TRACING
#define NDNP_TRACING 1
#endif

namespace ndnp::util {

class MetricsRegistry;

enum class TraceEventType : std::uint8_t {
  kInterestTx,   // packet handed to a face for transmission
  kInterestRx,   // packet arrived at a node
  kDataTx,
  kDataRx,
  kNackTx,
  kNackRx,
  kLinkEnqueue,  // transmission scheduled on a link (a = total delay ns, b = wire bytes)
  kLinkDequeue,  // delivery at the far end of the link
  kLinkDrop,     // packet lost on the link
  kCsLookup,     // detail: result=hit|miss|expired depth=<d> policy=<eviction>
  kCsInsert,     // detail: size=<n> cap=<c>
  kCsEvict,      // name = victim; detail: reason=capacity|erase
  kPitCreate,
  kPitAggregate,  // interest collapsed onto a pending entry
  kPitSatisfy,    // a = pending duration ns, b = downstream count
  kPitExpire,
  kPolicyDecision,  // detail: action=... k=<k_C> c=<c_C>; a = artificial delay ns
  kAttackProbe,     // a = measured RTT ns, b = probe round; detail: truth=hit|miss
  kReplayRequest,   // one replayed trace request; detail: outcome=...
  kFaultInject,     // injected fault fired; detail: cause=... (see sim/faults.hpp)
  kTelemetryAlarm,  // streaming detector fired; detail: detector=... scope=...
                    // bucket=<n> stat=<v> (see telemetry/detectors.hpp)
  kSpan,            // profiling span (a = wall-clock duration ns)
  kMark,            // free-form instant event
};

[[nodiscard]] std::string_view to_string(TraceEventType type) noexcept;

/// Default component a given event type files under in the exporters
/// ("forwarder", "cs", "policy", "link", "attack", "replay", ...).
[[nodiscard]] std::string_view default_component(TraceEventType type) noexcept;

/// One recorded event. Node and component are interned label ids resolved
/// through the owning Tracer; `name` is the content name URI ("" when not
/// applicable); `a`/`b` are type-specific numeric arguments (see the enum).
struct TraceEvent {
  util::SimTime time = 0;
  TraceEventType type = TraceEventType::kMark;
  std::uint32_t node = 0;
  std::uint32_t comp = 0;
  std::int64_t face = -1;
  std::string name;
  std::string detail;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

class Tracer {
 public:
  /// `ring_capacity` == 0 keeps every event (unbounded append buffer);
  /// otherwise only the most recent `ring_capacity` events are retained
  /// (flight-recorder mode — `dropped()` counts the overwritten ones).
  explicit Tracer(std::size_t ring_capacity = 0);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Only record events whose `name` starts with `prefix` (events with an
  /// empty name — spans, marks — always pass). Empty prefix = record all.
  void set_filter(std::string prefix) { filter_ = std::move(prefix); }
  [[nodiscard]] const std::string& filter() const noexcept { return filter_; }

  /// When set, profiling spans additionally feed wall-clock histograms
  /// ("profile.<comp>.<label>_us") into this registry. Wall-clock values
  /// are observability-only and must never reach deterministic outputs.
  void set_profile_registry(MetricsRegistry* registry) noexcept { profile_ = registry; }
  [[nodiscard]] MetricsRegistry* profile_registry() const noexcept { return profile_; }

  /// Intern a node/component label; stable id for this tracer's lifetime.
  [[nodiscard]] std::uint32_t intern(std::string_view label);
  [[nodiscard]] const std::string& label(std::uint32_t id) const;
  [[nodiscard]] const std::vector<std::string>& labels() const noexcept { return labels_; }

  /// Append one event (component derived from `type`). `name` must be the
  /// content name URI or empty. Never call directly from instrumentation —
  /// go through NDNP_TRACE_EVENT so the disabled path stays free.
  void record(TraceEventType type, std::string_view node, util::SimTime time,
              std::string name = {}, std::string detail = {}, std::int64_t face = -1,
              std::int64_t a = 0, std::int64_t b = 0);

  /// Append a profiling span (kSpan, explicit component, wall-clock
  /// duration in ns). Stamped with the time of the last recorded event —
  /// spans measure where the *wall clock* goes at that simulation moment.
  void record_span(std::string_view node, std::string_view comp, std::string_view label,
                   std::int64_t wall_ns);

  /// Events in recording order (ring buffers are unwrapped chronologically).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  /// Total record() calls accepted (including ring-overwritten events).
  [[nodiscard]] std::size_t total_recorded() const noexcept { return total_; }
  /// Events overwritten by the ring plus events rejected by the filter.
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t filtered() const noexcept { return filtered_; }
  [[nodiscard]] util::SimTime last_time() const noexcept { return last_time_; }

  void clear();

  /// Tracer bound to this thread (nullptr = tracing inactive). Bind with
  /// TracerBinding; the tracer itself is not thread-safe — one thread per
  /// tracer at a time.
  [[nodiscard]] static Tracer* current() noexcept;

 private:
  friend class TracerBinding;

  bool enabled_ = true;
  std::size_t capacity_;
  std::size_t head_ = 0;  // next overwrite position once the ring is full
  std::size_t total_ = 0;
  std::size_t dropped_ = 0;
  std::size_t filtered_ = 0;
  util::SimTime last_time_ = kTimeZero;
  std::string filter_;
  MetricsRegistry* profile_ = nullptr;
  std::vector<TraceEvent> ring_;
  std::vector<std::string> labels_;
  std::map<std::string, std::uint32_t, std::less<>> label_ids_;
};

/// RAII: bind `tracer` to the current thread for the scope's duration,
/// restoring the previous binding on destruction. Binding nullptr
/// explicitly suspends tracing for the scope.
class TracerBinding {
 public:
  explicit TracerBinding(Tracer* tracer) noexcept;
  ~TracerBinding();

  TracerBinding(const TracerBinding&) = delete;
  TracerBinding& operator=(const TracerBinding&) = delete;

 private:
  Tracer* previous_;
};

/// Monotonic wall clock in nanoseconds (observability only — never feed
/// this into simulation state; see the determinism guard in test_runner).
[[nodiscard]] std::int64_t wall_clock_ns() noexcept;

/// Implementation of NDNP_TRACE_SCOPE: measures the enclosing scope's
/// wall-clock duration and records a kSpan event (plus a histogram sample
/// when the bound tracer has a profile registry). All three labels must
/// outlive the scope (string literals at the macro call sites).
class ScopedTraceSpan {
 public:
  ScopedTraceSpan(const char* node, const char* comp, const char* label) noexcept;
  ~ScopedTraceSpan();

  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;  // non-null only when armed at construction
  const char* node_ = nullptr;
  const char* comp_ = nullptr;
  const char* label_ = nullptr;
  std::int64_t start_ns_ = 0;
};

}  // namespace ndnp::util

// ---------------------------------------------------------------------------
// Instrumentation macros. Arguments are evaluated ONLY when a tracer is
// bound and enabled, so call sites may freely pass `name.to_uri()` and
// formatted detail strings without taxing the common path.

#if NDNP_TRACING

/// NDNP_TRACE_EVENT(type, node, time, name, detail, face, a, b) — trailing
/// arguments optional per Tracer::record's defaults.
#define NDNP_TRACE_EVENT(type, node, /*time,*/...)                            \
  do {                                                                        \
    ::ndnp::util::Tracer* ndnp_trace_t_ = ::ndnp::util::Tracer::current();    \
    if (ndnp_trace_t_ != nullptr && ndnp_trace_t_->enabled())                 \
      ndnp_trace_t_->record((type), (node), __VA_ARGS__);                     \
  } while (0)

#define NDNP_TRACE_CONCAT_IMPL(a, b) a##b
#define NDNP_TRACE_CONCAT(a, b) NDNP_TRACE_CONCAT_IMPL(a, b)

/// Wall-clock profiling span over the enclosing scope.
#define NDNP_TRACE_SCOPE(node, comp, label)                                   \
  ::ndnp::util::ScopedTraceSpan NDNP_TRACE_CONCAT(ndnp_trace_scope_,          \
                                                  __LINE__){(node), (comp), (label)}

#else  // NDNP_TRACING == 0: compiled out, guaranteed zero cost.

#define NDNP_TRACE_EVENT(...) ((void)0)
#define NDNP_TRACE_SCOPE(...) static_cast<void>(0)

#endif
