// Statistics utilities used across attacks, benches and tests.
//
// The timing attacks of the paper (Section III) reduce to distinguishing
// two delay distributions (cache hit vs cache miss). The primitives here —
// streaming moments, fixed-bin histograms, total-variation distance and the
// induced Bayes-optimal classification accuracy — are exactly what those
// experiments and their figures need.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ndnp::util {

/// Streaming mean/variance/min/max (Welford's algorithm): numerically
/// stable, O(1) memory, mergeable.
class Welford {
 public:
  void add(double x) noexcept;
  void merge(const Welford& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 if fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bin histogram over [lo, hi). Out-of-range samples clamp to
/// the first/last bin so no probability mass is silently dropped (matters
/// for heavy-tailed WAN jitter).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double bin_width() const noexcept;
  [[nodiscard]] double bin_center(std::size_t bin) const;

  /// Probability mass of a bin (count / total); 0 when empty.
  [[nodiscard]] double pmf(std::size_t bin) const;

  /// Probability *density* of a bin (pmf / bin width) — the quantity the
  /// paper's Figure 3 plots on the y axis.
  [[nodiscard]] double density(std::size_t bin) const;

  /// Bin index a sample would fall into (after clamping).
  [[nodiscard]] std::size_t bin_of(double x) const noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Sample container with exact quantiles. Unlike Histogram this keeps every
/// observation; use it when sample counts are modest (timing probes).
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }
  [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
  [[nodiscard]] double stddev() const noexcept { return stats_.stddev(); }
  [[nodiscard]] double min() const noexcept { return stats_.min(); }
  [[nodiscard]] double max() const noexcept { return stats_.max(); }

  /// Exact quantile by sorting a copy; q in [0,1]. Throws if empty.
  [[nodiscard]] double quantile(double q) const;

  /// Histogram over [min, max] of the combined range of *both* sets, with
  /// identical binning — the precondition for total_variation below.
  [[nodiscard]] static std::pair<Histogram, Histogram> paired_histograms(
      const SampleSet& a, const SampleSet& b, std::size_t bins);

 private:
  std::vector<double> samples_;
  Welford stats_;
};

/// Total-variation distance between two histograms with identical binning:
/// TV = 1/2 * sum_b |p_a(b) - p_b(b)|, in [0, 1]. Throws on binning
/// mismatch.
[[nodiscard]] double total_variation(const Histogram& a, const Histogram& b);

/// Accuracy of the Bayes-optimal classifier distinguishing two equally
/// likely distributions: 1/2 + TV/2. This is the "probability that Adv can
/// determine whether C is retrieved from R's cache" that the paper reports
/// (>99.9 % LAN, >99 % WAN, ~59 % producer-adjacent).
[[nodiscard]] double bayes_accuracy(const Histogram& a, const Histogram& b);

/// Kolmogorov-Smirnov statistic max_i |CDF_a(i) - CDF_b(i)| between two
/// probability vectors over the same outcome indexing (shorter one padded
/// with zeros). Less binning-sensitive than TV for goodness-of-fit checks.
[[nodiscard]] double ks_statistic(const std::vector<double>& a, const std::vector<double>& b);

/// KS statistic between two same-binned histograms.
[[nodiscard]] double ks_statistic(const Histogram& a, const Histogram& b);

/// Convenience: Bayes accuracy straight from two sample sets, using
/// `bins` shared bins over their combined range.
[[nodiscard]] double bayes_accuracy(const SampleSet& a, const SampleSet& b, std::size_t bins = 64);

/// Two-sample Pearson chi-square statistic for homogeneity between two
/// count vectors over the same categories:
///
///   X^2 = sum_i (sqrt(N_b/N_a) a_i - sqrt(N_a/N_b) b_i)^2 / (a_i + b_i)
///
/// over cells with a_i + b_i > 0 (empty cells carry no evidence). Under the
/// null hypothesis that both vectors draw from one distribution, X^2 is
/// asymptotically chi-square with (#nonempty cells - 1) degrees of freedom.
/// The statistical-regression tests lock an upper bound on this for
/// sharded-vs-unsharded replay outcome distributions. Throws
/// std::invalid_argument on size mismatch or when either vector is all
/// zeros.
[[nodiscard]] double chi_square_statistic(const std::vector<std::uint64_t>& a,
                                          const std::vector<std::uint64_t>& b);

/// Total-variation distance between two count vectors over the same
/// categories (each normalized to a probability vector first); in [0, 1].
/// Throws std::invalid_argument on size mismatch or all-zero input.
[[nodiscard]] double total_variation(const std::vector<std::uint64_t>& a,
                                     const std::vector<std::uint64_t>& b);

/// Fragment-correlation amplification (Section III): probability of overall
/// attack success when a content is split into n objects and each
/// independent per-object probe succeeds with probability p:
/// 1 - (1-p)^n.
[[nodiscard]] double amplified_success(double per_object_success, std::size_t n_objects) noexcept;

/// Render two same-binned histograms side by side as the text analogue of
/// the paper's PDF plots (Figure 3): one row per bin with center, and the
/// two densities. Used by the bench binaries.
[[nodiscard]] std::string format_pdf_table(const Histogram& a, const Histogram& b,
                                           const std::string& label_a,
                                           const std::string& label_b,
                                           const std::string& x_label = "time [ms]");

}  // namespace ndnp::util
