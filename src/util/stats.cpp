#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ndnp::util {

void Welford::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Welford::merge(const Welford& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Welford::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Welford::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  ++counts_[bin_of(x)];
  ++total_;
}

std::uint64_t Histogram::count(std::size_t bin) const { return counts_.at(bin); }

double Histogram::bin_width() const noexcept {
  return (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::bin_center(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_center");
  return lo_ + (static_cast<double>(bin) + 0.5) * bin_width();
}

double Histogram::pmf(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double Histogram::density(std::size_t bin) const { return pmf(bin) / bin_width(); }

std::size_t Histogram::bin_of(double x) const noexcept {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const auto bin = static_cast<std::size_t>((x - lo_) / bin_width());
  return std::min(bin, counts_.size() - 1);
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  stats_.add(x);
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("SampleSet::quantile on empty set");
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= sorted.size()) return sorted.back();
  return sorted[i] * (1.0 - frac) + sorted[i + 1] * frac;
}

std::pair<Histogram, Histogram> SampleSet::paired_histograms(const SampleSet& a,
                                                             const SampleSet& b,
                                                             std::size_t bins) {
  if (a.empty() || b.empty())
    throw std::invalid_argument("paired_histograms: both sets must be non-empty");
  double lo = std::min(a.min(), b.min());
  double hi = std::max(a.max(), b.max());
  if (lo == hi) {  // degenerate: all samples identical
    lo -= 0.5;
    hi += 0.5;
  }
  // Widen slightly so max samples do not all clamp into the last bin edge.
  const double pad = (hi - lo) * 1e-9;
  Histogram ha(lo, hi + pad, bins);
  Histogram hb(lo, hi + pad, bins);
  for (const double x : a.samples()) ha.add(x);
  for (const double x : b.samples()) hb.add(x);
  return {std::move(ha), std::move(hb)};
}

double total_variation(const Histogram& a, const Histogram& b) {
  if (a.bins() != b.bins() || a.lo() != b.lo() || a.hi() != b.hi())
    throw std::invalid_argument("total_variation: histograms must share binning");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.bins(); ++i) acc += std::abs(a.pmf(i) - b.pmf(i));
  return 0.5 * acc;
}

double bayes_accuracy(const Histogram& a, const Histogram& b) {
  return 0.5 + 0.5 * total_variation(a, b);
}

double bayes_accuracy(const SampleSet& a, const SampleSet& b, std::size_t bins) {
  const auto [ha, hb] = SampleSet::paired_histograms(a, b, bins);
  return bayes_accuracy(ha, hb);
}

double ks_statistic(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = std::max(a.size(), b.size());
  double cdf_a = 0.0;
  double cdf_b = 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cdf_a += i < a.size() ? a[i] : 0.0;
    cdf_b += i < b.size() ? b[i] : 0.0;
    worst = std::max(worst, std::abs(cdf_a - cdf_b));
  }
  return worst;
}

double ks_statistic(const Histogram& a, const Histogram& b) {
  if (a.bins() != b.bins() || a.lo() != b.lo() || a.hi() != b.hi())
    throw std::invalid_argument("ks_statistic: histograms must share binning");
  std::vector<double> pa(a.bins());
  std::vector<double> pb(b.bins());
  for (std::size_t i = 0; i < a.bins(); ++i) {
    pa[i] = a.pmf(i);
    pb[i] = b.pmf(i);
  }
  return ks_statistic(pa, pb);
}

namespace {

std::uint64_t count_total(const std::vector<std::uint64_t>& v) {
  std::uint64_t total = 0;
  for (const std::uint64_t x : v) total += x;
  return total;
}

}  // namespace

double chi_square_statistic(const std::vector<std::uint64_t>& a,
                            const std::vector<std::uint64_t>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("chi_square_statistic: category counts differ");
  const double na = static_cast<double>(count_total(a));
  const double nb = static_cast<double>(count_total(b));
  if (na == 0.0 || nb == 0.0)
    throw std::invalid_argument("chi_square_statistic: empty sample");
  const double ra = std::sqrt(nb / na);
  const double rb = std::sqrt(na / nb);
  double chi2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ai = static_cast<double>(a[i]);
    const double bi = static_cast<double>(b[i]);
    if (ai + bi == 0.0) continue;  // empty cell: no evidence either way
    const double diff = ra * ai - rb * bi;
    chi2 += diff * diff / (ai + bi);
  }
  return chi2;
}

double total_variation(const std::vector<std::uint64_t>& a,
                       const std::vector<std::uint64_t>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("total_variation: category counts differ");
  const double na = static_cast<double>(count_total(a));
  const double nb = static_cast<double>(count_total(b));
  if (na == 0.0 || nb == 0.0) throw std::invalid_argument("total_variation: empty sample");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += std::abs(static_cast<double>(a[i]) / na - static_cast<double>(b[i]) / nb);
  return 0.5 * acc;
}

double amplified_success(double per_object_success, std::size_t n_objects) noexcept {
  const double fail = std::clamp(1.0 - per_object_success, 0.0, 1.0);
  return 1.0 - std::pow(fail, static_cast<double>(n_objects));
}

std::string format_pdf_table(const Histogram& a, const Histogram& b, const std::string& label_a,
                             const std::string& label_b, const std::string& x_label) {
  if (a.bins() != b.bins() || a.lo() != b.lo() || a.hi() != b.hi())
    throw std::invalid_argument("format_pdf_table: histograms must share binning");
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%14s  %14s  %14s\n", x_label.c_str(), label_a.c_str(),
                label_b.c_str());
  out += line;
  for (std::size_t i = 0; i < a.bins(); ++i) {
    // Skip all-empty bins to keep bench output compact.
    if (a.count(i) == 0 && b.count(i) == 0) continue;
    std::snprintf(line, sizeof line, "%14.3f  %14.5f  %14.5f\n", a.bin_center(i), a.density(i),
                  b.density(i));
    out += line;
  }
  return out;
}

}  // namespace ndnp::util
