// Always-on runtime invariant layer.
//
// The simulator's correctness argument leans on a handful of structural
// invariants — PIT entries never outlive their lifetime, an interest is
// never re-forwarded for a nonce already pending, cache statistics obey
// conservation laws, the scheduler dispatches in (time, seq) order, links
// neither invent nor silently swallow packets. The fault-injection engine
// (sim/faults.hpp) deliberately pushes the pipeline into the corners where
// those invariants are easiest to break, so the checks live in the
// production code paths, guarded by NDNP_INVARIANT_CHECK.
//
// A violated invariant throws util::InvariantViolation carrying the
// component, source location and a formatted message; the chaos harness
// (sim/chaos.hpp) catches it per episode and reports the seed that
// reproduces it. Compiling with -DNDNP_INVARIANT=0 removes every check —
// the macro expands to `(void)0`, condition and message arguments are never
// evaluated — which CI uses to prove the layer is zero-cost when disabled.
#pragma once

#include <stdexcept>
#include <string>

#ifndef NDNP_INVARIANT
#define NDNP_INVARIANT 1
#endif

namespace ndnp::util {

/// Thrown by NDNP_INVARIANT_CHECK on a failed condition. Derives from
/// logic_error: an invariant violation is a bug in this repository (or a
/// deliberately broken test double), never a recoverable runtime state.
class InvariantViolation : public std::logic_error {
 public:
  InvariantViolation(std::string component, std::string message, const char* file, int line);

  [[nodiscard]] const std::string& component() const noexcept { return component_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }
  [[nodiscard]] const char* file() const noexcept { return file_; }
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  std::string component_;
  std::string message_;
  const char* file_;
  int line_;
};

/// Total NDNP_INVARIANT_CHECK failures raised in this thread (monotonic).
/// The chaos harness samples it around an episode so violations are counted
/// even when an intermediate layer swallows the exception.
[[nodiscard]] std::uint64_t invariant_violations() noexcept;

#if defined(__GNUC__)
#define NDNP_INVARIANT_PRINTF __attribute__((format(printf, 4, 5)))
#else
#define NDNP_INVARIANT_PRINTF
#endif

/// Formats the message, bumps the per-thread violation counter and throws
/// InvariantViolation. Out-of-line so the check macro stays one compare and
/// a never-taken call on the hot path.
[[noreturn]] void invariant_failed(const char* component, const char* file, int line,
                                   const char* fmt, ...) NDNP_INVARIANT_PRINTF;

#undef NDNP_INVARIANT_PRINTF

}  // namespace ndnp::util

#if NDNP_INVARIANT

/// NDNP_INVARIANT_CHECK(component, condition, fmt, ...) — throws
/// util::InvariantViolation when `condition` is false. `component` and
/// `fmt` must be string literals; format arguments are evaluated only on
/// failure paths reached, conditions only once.
#define NDNP_INVARIANT_CHECK(component, condition, ...)                                  \
  do {                                                                                   \
    if (!(condition))                                                                    \
      ::ndnp::util::invariant_failed((component), __FILE__, __LINE__, __VA_ARGS__);      \
  } while (0)

#else  // NDNP_INVARIANT == 0: compiled out, guaranteed zero cost.

#define NDNP_INVARIANT_CHECK(...) ((void)0)

#endif
