// Gilbert–Elliott two-state loss model.
//
// The classic burst-loss channel: a Markov chain alternates between a Good
// and a Bad state with per-packet transition probabilities; each state has
// its own loss probability (canonically 0 in Good, 1 in Bad). Sojourn times
// are geometric, so losses arrive in bursts of mean length 1/p_exit_bad —
// the loss pattern that stresses cache/PIT state machines far harder than
// iid drops of the same average rate.
//
// This is the shared primitive under both fault layers: the link-level
// fault engine (sim/faults.hpp) runs one chain per link direction, and the
// trace replayer (trace/replayer.hpp) runs one against the upstream fetch
// path for the degraded-network Figure 5(a) ablations. All randomness is
// drawn from the caller's util::Rng, so fault sequences are reproducible
// bit-for-bit from a seed.
#pragma once

#include "util/rng.hpp"

namespace ndnp::util {

struct GilbertElliottConfig {
  /// Per-packet transition probability Good -> Bad.
  double p_enter_bad = 0.0;
  /// Per-packet transition probability Bad -> Good (1/mean burst length).
  double p_exit_bad = 1.0;
  /// Loss probability while in the Good state (0 in the classic model).
  double loss_good = 0.0;
  /// Loss probability while in the Bad state (1 in the classic model).
  double loss_bad = 1.0;

  [[nodiscard]] bool enabled() const noexcept {
    return p_enter_bad > 0.0 || loss_good > 0.0;
  }

  /// Long-run fraction of time spent in the Bad state.
  [[nodiscard]] double stationary_bad() const noexcept {
    const double denom = p_enter_bad + p_exit_bad;
    return denom > 0.0 ? p_enter_bad / denom : 0.0;
  }

  /// Long-run loss rate implied by the chain parameters.
  [[nodiscard]] double stationary_loss() const noexcept {
    const double bad = stationary_bad();
    return loss_good * (1.0 - bad) + loss_bad * bad;
  }

  /// Parameterize from a target stationary loss rate and a mean burst
  /// length (>= 1 packet): loss_bad = 1, loss_good = 0, p_exit = 1/burst,
  /// p_enter chosen so the stationary Bad fraction equals `loss`. This is
  /// the bench-facing spelling ("5 % loss in bursts of ~5 packets").
  [[nodiscard]] static GilbertElliottConfig from_loss_and_burst(double loss,
                                                                double mean_burst) noexcept {
    GilbertElliottConfig config;
    if (loss <= 0.0) return config;
    if (loss >= 1.0) return {.p_enter_bad = 1.0, .p_exit_bad = 0.0};
    if (mean_burst < 1.0) mean_burst = 1.0;
    config.p_exit_bad = 1.0 / mean_burst;
    config.p_enter_bad = config.p_exit_bad * loss / (1.0 - loss);
    return config;
  }
};

/// The chain state. One instance per independent channel (per link
/// direction, per replay); every sample_loss consumes exactly two draws
/// from `rng` (state transition, then loss), keeping the stream layout
/// independent of the state sequence.
class GilbertElliottChain {
 public:
  explicit GilbertElliottChain(const GilbertElliottConfig& config) noexcept
      : config_(config) {}

  /// Advance one packet; returns true if this packet is lost.
  [[nodiscard]] bool sample_loss(Rng& rng) noexcept {
    const double flip = rng.uniform01();
    if (bad_) {
      if (flip < config_.p_exit_bad) bad_ = false;
    } else {
      if (flip < config_.p_enter_bad) bad_ = true;
    }
    return rng.bernoulli(bad_ ? config_.loss_bad : config_.loss_good);
  }

  [[nodiscard]] bool in_bad() const noexcept { return bad_; }
  [[nodiscard]] const GilbertElliottConfig& config() const noexcept { return config_; }

 private:
  GilbertElliottConfig config_;
  bool bad_ = false;
};

}  // namespace ndnp::util
