// Deterministic random number generation.
//
// Every stochastic component in this repository draws randomness through
// `Rng`, a xoshiro256** generator seeded explicitly by the caller. This
// guarantees bit-reproducible experiments: the same seed always yields the
// same trace, the same jitter and the same Random-Cache draws, regardless
// of platform or standard-library version (std::<distribution> results are
// implementation-defined, so all distributions are implemented here).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ndnp::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state and
/// to derive independent child seeds. Passes BigCrush when used alone.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 256-bit-state PRNG (Blackman/Vigna).
/// Satisfies the UniformRandomBitGenerator concept.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Jump function: advances the state by 2^128 steps, equivalent to that
  /// many next() calls. Used to split one generator into non-overlapping
  /// streams.
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// High-level deterministic RNG with the distributions this project needs.
/// All methods are cheap; the object is freely copyable (copies diverge).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

  /// Derive an independent child RNG; successive calls give distinct
  /// streams. Useful for giving each link / user / policy its own stream so
  /// that adding a component does not perturb others' draws.
  [[nodiscard]] Rng fork() noexcept;

  [[nodiscard]] std::uint64_t next_u64() noexcept { return gen_.next(); }

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// unbiased multiply-shift rejection method.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Exponential with rate lambda (> 0); mean 1/lambda.
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal
  /// and fork()/copy semantics exact).
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Log-normal: exp(N(mu, sigma)). Used for WAN jitter tails.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Geometric on {0,1,2,...} with success probability 1-alpha, i.e.
  /// Pr[X=k] = (1-alpha) * alpha^k. Requires 0 < alpha < 1.
  [[nodiscard]] std::uint64_t geometric(double alpha) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  Xoshiro256 gen_;
};

/// Zipf(s) sampler over ranks {1, ..., n}: Pr[X=r] proportional to r^-s.
/// Precomputes the CDF once (O(n) memory) and samples by binary search in
/// O(log n). Used by the synthetic trace generator; web-proxy object
/// popularity is classically Zipf with s in [0.6, 1.0].
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Rank in [1, n]; rank 1 is the most popular.
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double exponent() const noexcept { return s_; }

  /// Probability mass of a given rank (1-based).
  [[nodiscard]] double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
  double s_;
};

}  // namespace ndnp::util
