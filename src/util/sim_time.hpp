// Simulation time primitives.
//
// All simulator components express time as `SimTime`, a signed 64-bit count
// of nanoseconds since the start of the simulation. A dedicated strong-ish
// alias (rather than std::chrono) keeps the discrete-event core trivially
// serializable and free of template noise, while the helpers below keep
// call sites readable (`millis(5)` instead of `5'000'000`).
#pragma once

#include <cstdint>

namespace ndnp::util {

/// Nanoseconds since simulation start. Negative values are never scheduled;
/// they are used only as "unset" sentinels by some components.
using SimTime = std::int64_t;

/// Duration in nanoseconds (same representation as SimTime).
using SimDuration = std::int64_t;

inline constexpr SimTime kTimeZero = 0;

/// Sentinel meaning "no time recorded".
inline constexpr SimTime kTimeUnset = -1;

[[nodiscard]] constexpr SimDuration nanos(std::int64_t n) noexcept { return n; }
[[nodiscard]] constexpr SimDuration micros(std::int64_t us) noexcept { return us * 1'000; }
[[nodiscard]] constexpr SimDuration millis(std::int64_t ms) noexcept { return ms * 1'000'000; }
[[nodiscard]] constexpr SimDuration seconds(std::int64_t s) noexcept { return s * 1'000'000'000; }

/// Fractional-millisecond constructor, useful for sub-millisecond link
/// latencies (e.g. `millis_f(0.05)` for a 50 us LAN hop).
[[nodiscard]] constexpr SimDuration millis_f(double ms) noexcept {
  return static_cast<SimDuration>(ms * 1'000'000.0);
}

[[nodiscard]] constexpr double to_millis(SimDuration d) noexcept {
  return static_cast<double>(d) / 1'000'000.0;
}

[[nodiscard]] constexpr double to_micros(SimDuration d) noexcept {
  return static_cast<double>(d) / 1'000.0;
}

[[nodiscard]] constexpr double to_seconds(SimDuration d) noexcept {
  return static_cast<double>(d) / 1'000'000'000.0;
}

}  // namespace ndnp::util
