// Slab free-list allocator and recycling object pool.
//
// Two allocation substrates for the event core (docs/PERFORMANCE.md):
//
//  - `Slab<T>`: a chunked arena of fixed-size nodes with an intrusive free
//    list. Nodes have stable addresses, destroy() recycles into the free
//    list without returning memory to the OS, so steady-state
//    create/destroy cycles perform zero heap allocations once the peak
//    working set has been carved. The timer-wheel scheduler's event nodes
//    live here.
//
//  - `ObjectPool<T>` + `PoolRef<T>`: a recycling pool of *constructed*
//    objects with intrusive reference-counted handles. Releasing a handle
//    returns the object to the free list WITHOUT destroying it, so its
//    internal buffers (a packet Name's component vector, a Data payload
//    string) keep their capacity and the next acquire/assign cycle reuses
//    them. This is what makes pooled Interest/Data copies on the
//    link/forwarder hot paths allocation-free for SSO-sized components.
//    PoolRef keeps the pool alive via shared_ptr, so handles captured in
//    scheduled events stay valid under any node/scheduler destruction
//    order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace ndnp::util {

template <typename T>
class Slab {
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "Slab supports only fundamental alignment");

 public:
  explicit Slab(std::size_t nodes_per_chunk = 256) : nodes_per_chunk_(nodes_per_chunk) {}

  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  /// All live objects must have been destroy()ed; chunks are freed wholesale.
  ~Slab() = default;

  template <typename... Args>
  T* create(Args&&... args) {
    void* memory = acquire();
    T* object = ::new (memory) T(std::forward<Args>(args)...);
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    return object;
  }

  void destroy(T* object) noexcept {
    object->~T();
    auto* node = reinterpret_cast<FreeNode*>(object);
    node->next = free_;
    free_ = node;
    --live_;
  }

  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  [[nodiscard]] std::size_t peak_live() const noexcept { return peak_live_; }
  [[nodiscard]] std::size_t chunks() const noexcept { return chunks_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return chunks_.size() * nodes_per_chunk_;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static constexpr std::size_t kNodeBytes =
      sizeof(T) > sizeof(FreeNode) ? sizeof(T) : sizeof(FreeNode);
  // Round the stride up so every node in a chunk stays max-aligned.
  static constexpr std::size_t kStride =
      (kNodeBytes + alignof(std::max_align_t) - 1) & ~(alignof(std::max_align_t) - 1);

  void* acquire() {
    if (free_ != nullptr) {
      FreeNode* node = free_;
      free_ = node->next;
      return node;
    }
    if (next_in_chunk_ == nodes_per_chunk_ || chunks_.empty()) {
      chunks_.push_back(std::make_unique<std::byte[]>(kStride * nodes_per_chunk_));
      next_in_chunk_ = 0;
    }
    return chunks_.back().get() + kStride * next_in_chunk_++;
  }

  std::size_t nodes_per_chunk_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  FreeNode* free_ = nullptr;
  std::size_t next_in_chunk_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
};

template <typename T>
class ObjectPool;

/// Reference-counted handle to a pooled object. Copies share the object;
/// when the last handle drops, the object returns to the pool's free list
/// *un-destroyed* (buffers keep their capacity for the next user). The
/// handle pins the pool itself via shared_ptr, so it survives the pool's
/// nominal owner (e.g. a Node destroyed while its packets are still in
/// flight inside the scheduler).
template <typename T>
class PoolRef {
 public:
  PoolRef() noexcept = default;

  PoolRef(const PoolRef& other) noexcept : pool_(other.pool_), node_(other.node_) {
    if (node_ != nullptr) ++node_->refs;
  }

  PoolRef(PoolRef&& other) noexcept : pool_(std::move(other.pool_)), node_(other.node_) {
    other.node_ = nullptr;
  }

  PoolRef& operator=(const PoolRef& other) noexcept {
    if (this != &other) {
      release();
      pool_ = other.pool_;
      node_ = other.node_;
      if (node_ != nullptr) ++node_->refs;
    }
    return *this;
  }

  PoolRef& operator=(PoolRef&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = std::move(other.pool_);
      node_ = other.node_;
      other.node_ = nullptr;
    }
    return *this;
  }

  ~PoolRef() { release(); }

  [[nodiscard]] T& operator*() noexcept { return node_->value; }
  [[nodiscard]] const T& operator*() const noexcept { return node_->value; }
  [[nodiscard]] T* operator->() noexcept { return &node_->value; }
  [[nodiscard]] const T* operator->() const noexcept { return &node_->value; }
  [[nodiscard]] explicit operator bool() const noexcept { return node_ != nullptr; }

 private:
  friend class ObjectPool<T>;

  PoolRef(std::shared_ptr<ObjectPool<T>> pool, typename ObjectPool<T>::Node* node) noexcept
      : pool_(std::move(pool)), node_(node) {
    ++node_->refs;
  }

  void release() noexcept {
    if (node_ != nullptr && --node_->refs == 0) pool_->recycle(node_);
    node_ = nullptr;
    pool_.reset();
  }

  std::shared_ptr<ObjectPool<T>> pool_;
  typename ObjectPool<T>::Node* node_ = nullptr;
};

template <typename T>
class ObjectPool : public std::enable_shared_from_this<ObjectPool<T>> {
 public:
  /// Pools are always shared_ptr-managed (handles extend their lifetime).
  [[nodiscard]] static std::shared_ptr<ObjectPool> make() {
    return std::shared_ptr<ObjectPool>(new ObjectPool());
  }

  /// Returns a handle to a recycled (or newly default-constructed) object.
  /// The contents are whatever the previous user left — callers assign
  /// before reading, which is exactly what lets buffer capacity carry over.
  [[nodiscard]] PoolRef<T> acquire() {
    Node* node = free_;
    if (node != nullptr) {
      free_ = node->next_free;
      ++reused_;
    } else {
      nodes_.push_back(std::make_unique<Node>());
      node = nodes_.back().get();
    }
    return PoolRef<T>(this->shared_from_this(), node);
  }

  [[nodiscard]] std::size_t created() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::uint64_t reused() const noexcept { return reused_; }

 private:
  friend class PoolRef<T>;

  struct Node {
    T value{};
    std::uint32_t refs = 0;
    Node* next_free = nullptr;
  };

  ObjectPool() = default;

  void recycle(Node* node) noexcept {
    node->next_free = free_;
    free_ = node;
  }

  std::vector<std::unique_ptr<Node>> nodes_;
  Node* free_ = nullptr;
  std::uint64_t reused_ = 0;
};

}  // namespace ndnp::util
