#include "util/logging.hpp"

#include <atomic>

namespace ndnp::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

void vlog(LogLevel level, const char* fmt, std::va_list args) noexcept {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[%s] ", level_name(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

void log(LogLevel level, const char* fmt, ...) noexcept {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) return;
  std::va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

}  // namespace ndnp::util
