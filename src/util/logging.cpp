#include "util/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ndnp::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

bool parse_log_level(const char* name, LogLevel& out) noexcept {
  if (name == nullptr) return false;
  if (name[0] >= '0' && name[0] <= '4' && name[1] == '\0') {
    out = static_cast<LogLevel>(name[0] - '0');
    return true;
  }
  if (std::strcmp(name, "error") == 0) out = LogLevel::kError;
  else if (std::strcmp(name, "warn") == 0) out = LogLevel::kWarn;
  else if (std::strcmp(name, "info") == 0) out = LogLevel::kInfo;
  else if (std::strcmp(name, "debug") == 0) out = LogLevel::kDebug;
  else if (std::strcmp(name, "trace") == 0) out = LogLevel::kTrace;
  else return false;
  return true;
}

void vlog(LogLevel level, const char* fmt, std::va_list args) noexcept {
  // Level is re-checked here so every vlog caller gets the same gate; the
  // printf-style wrappers below also check before va_start to keep the
  // disabled path free of varargs setup.
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) return;

  // Format the whole line — "[LEVEL] <message>\n" — into one buffer and
  // emit it with a single fwrite: three separate stdio calls interleave
  // between threads under the parallel sweep runner and shred lines.
  char stack_buf[1024];
  const int prefix = std::snprintf(stack_buf, sizeof stack_buf, "[%s] ", level_name(level));
  if (prefix < 0) return;

  std::va_list probe;
  va_copy(probe, args);
  const int body = std::vsnprintf(stack_buf + prefix, sizeof stack_buf - prefix, fmt, probe);
  va_end(probe);
  if (body < 0) return;

  char* line = stack_buf;
  std::size_t len = static_cast<std::size_t>(prefix) + static_cast<std::size_t>(body);
  char* heap_buf = nullptr;
  if (len + 1 >= sizeof stack_buf) {
    // Message did not fit: reformat into an exact-size heap buffer. On
    // allocation failure fall back to the truncated stack copy.
    heap_buf = static_cast<char*>(std::malloc(len + 2));
    if (heap_buf != nullptr) {
      std::memcpy(heap_buf, stack_buf, static_cast<std::size_t>(prefix));
      std::vsnprintf(heap_buf + prefix, len + 2 - static_cast<std::size_t>(prefix), fmt, args);
      line = heap_buf;
    } else {
      len = sizeof stack_buf - 2;
    }
  }
  line[len] = '\n';
  std::fwrite(line, 1, len + 1, stderr);
  std::free(heap_buf);
}

void log(LogLevel level, const char* fmt, ...) noexcept {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) return;
  std::va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

}  // namespace ndnp::util
