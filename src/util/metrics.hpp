// Metrics registry: named monotonic counters and fixed-bin histograms.
//
// Components (ContentStore, Forwarder, the CM policies, the replay engine)
// publish their counters into a per-run `MetricsRegistry` under a dotted
// naming scheme (`<component>.<counter>`, e.g. "cs.evictions",
// "engine.exposed_hits"; see docs/RUNNER.md). A registry is snapshotted at
// the end of a run into a plain-data `MetricsSnapshot`; snapshots from a
// seed/parameter sweep are aggregated across runs (mean/stddev/min/max via
// Welford, exact percentiles via SampleSet) and exported as JSON for the
// bench harness.
//
// Thread-safety contract: a registry may be shared by several threads —
// counter increments and histogram adds are lock-free atomics, and
// name->metric resolution takes a mutex — but the common usage is one
// registry per run (the runner gives every run its own). Snapshots and
// aggregates are plain values with no synchronization; take them after the
// writers are done (or accept a momentary torn view across *different*
// metrics — individual counters are always internally consistent).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace ndnp::util {

/// Monotonic counter. Increments from any number of threads sum exactly
/// (fetch_add; relaxed ordering suffices — counters carry no dependencies).
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-width-bin histogram over [lo, hi) with atomic per-bin counts.
/// Out-of-range samples clamp to the edge bins (same convention as
/// util::Histogram). Shape (lo, hi, bins) is fixed at creation; two
/// histogram snapshots merge iff their shapes match.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const noexcept {
    return counts_[bin].load(std::memory_order_relaxed);
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::atomic<std::uint64_t>> counts_;
};

/// Plain-data histogram snapshot; the mergeable/serializable counterpart of
/// HistogramMetric.
struct HistogramData {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::uint64_t> counts;

  [[nodiscard]] std::uint64_t total() const noexcept;
  [[nodiscard]] bool same_shape(const HistogramData& other) const noexcept;

  /// Mean estimated from bin centers (diagnostic; exact stats should use a
  /// counter pair or a gauge).
  [[nodiscard]] double approx_mean() const noexcept;
};

/// Bin-wise sum of two same-shaped histograms. Associative and commutative
/// (unsigned addition per bin). Throws std::invalid_argument on shape
/// mismatch.
[[nodiscard]] HistogramData merge(const HistogramData& a, const HistogramData& b);

struct MetricsSnapshot;

/// Element-wise union of per-shard snapshots (the sharded replayer's merge
/// step): counters are summed, same-named histograms merged bin-wise, and
/// gauges summed. Non-additive gauges (rates, means) must be recomputed
/// from the merged counters by the caller — summing them is only the right
/// default for additive totals. Parts are folded in vector order over
/// ordered maps, so the result is deterministic and independent of how the
/// parts were produced.
[[nodiscard]] MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts);

/// Point-in-time copy of a registry, plus free-form derived gauges (doubles
/// like hit rates that runs compute from counters). All maps are ordered so
/// serialization is canonical: equal snapshots produce byte-identical JSON.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Canonical JSON. Doubles are printed with "%.17g" (round-trip exact),
  /// keys in lexicographic order — deterministic byte-for-byte.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] bool operator==(const MetricsSnapshot& other) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get by name. Returned references stay valid for the
  /// registry's lifetime (metrics are never removed).
  [[nodiscard]] Counter& counter(const std::string& name);
  /// Create-or-get; on re-lookup the (lo, hi, bins) arguments must match
  /// the existing shape (throws std::invalid_argument otherwise).
  [[nodiscard]] HistogramMetric& histogram(const std::string& name, double lo, double hi,
                                           std::size_t bins);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

/// Cross-run aggregate of one metric: count/mean/stddev/min/max (Welford)
/// plus exact percentiles (SampleSet keeps every per-run value; sweeps are
/// at most thousands of runs, so this is cheap).
struct MetricAggregate {
  Welford stats;
  SampleSet samples;

  void add(double x);
  [[nodiscard]] double percentile(double q) const { return samples.quantile(q); }
};

/// Aggregate of a whole sweep: every counter and gauge name seen in any run
/// maps to its across-run statistics (runs missing a name contribute 0 for
/// counters and are skipped for gauges); same-named histograms are merged
/// bin-wise.
struct SweepAggregate {
  std::size_t runs = 0;
  std::map<std::string, MetricAggregate> counters;
  std::map<std::string, MetricAggregate> gauges;
  std::map<std::string, HistogramData> histograms;

  [[nodiscard]] static SweepAggregate from_runs(const std::vector<MetricsSnapshot>& runs);

  /// Canonical JSON (same determinism guarantees as MetricsSnapshot).
  [[nodiscard]] std::string to_json() const;
};

}  // namespace ndnp::util
