// Move-only type-erased callable with inline small-buffer storage.
//
// `SmallFunction<Capacity>` is the event-callable type of the simulation
// core: unlike std::function it (a) never heap-allocates when the callable
// fits `Capacity` bytes and is nothrow-move-constructible, and (b) accepts
// move-only callables (the packet pool's PoolRef handles are move-only by
// design). Callables that do not fit fall back to a single heap node —
// the scheduler exposes a counter so tests and benches can assert the hot
// paths stay on the inline path.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ndnp::util {

template <std::size_t Capacity>
class SmallFunction {
 public:
  SmallFunction() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, SmallFunction>)
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor): function-like
    emplace(std::forward<F>(f));
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the stored callable lives on the heap (did not fit inline).
  [[nodiscard]] bool heap_allocated() const noexcept { return ops_ != nullptr && ops_->heap; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*move_to)(void* from, void* to);  // move-construct at `to`, destroy `from`
    void (*destroy)(void*);
    bool heap;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* from, void* to) {
        ::new (to) D(std::move(*static_cast<D*>(from)));
        static_cast<D*>(from)->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
      false,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* from, void* to) {
        *static_cast<D**>(to) = *static_cast<D**>(from);
        *static_cast<D**>(from) = nullptr;
      },
      [](void* p) { delete *static_cast<D**>(p); },
      true,
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(storage_)) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  void move_from(SmallFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->move_to(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[Capacity];
};

}  // namespace ndnp::util
