// Minimal leveled logger.
//
// The simulator is a library, so logging is opt-in and goes through a
// process-global level that benches/examples can raise for debugging.
// Printing is printf-style to keep call sites short and allocation-free on
// the fast path when the level is disabled.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace ndnp::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

/// Process-global log threshold; messages above it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parse a --log-level argument ("error", "warn", "info", "debug", "trace",
/// or a bare digit 0-4) into `out`. Returns false on anything else.
[[nodiscard]] bool parse_log_level(const char* name, LogLevel& out) noexcept;

/// Core sink: writes "[LEVEL] <message>\n" to stderr when enabled.
void vlog(LogLevel level, const char* fmt, std::va_list args) noexcept;

#if defined(__GNUC__)
#define NDNP_PRINTF_LIKE __attribute__((format(printf, 2, 3)))
#else
#define NDNP_PRINTF_LIKE
#endif

void log(LogLevel level, const char* fmt, ...) noexcept NDNP_PRINTF_LIKE;

#undef NDNP_PRINTF_LIKE

}  // namespace ndnp::util
