// Packet capture for simulated links.
//
// Attach a PacketTap to any LinkConfig before connect() and every packet
// transmitted over that link is recorded — kind, direction, wire bytes
// (real TLV encoding), timestamps. Captures can be dumped in a tcpdump-
// style text form for debugging, and they power tests that assert on
// exact wire traffic. The adversary of the paper does NOT get taps; this
// is a developer observability tool (the whole point of the paper is what
// can be learned *without* one).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ndn/tlv.hpp"
#include "util/sim_time.hpp"

namespace ndnp::sim {

enum class PacketKind { kInterest, kData, kNack };

[[nodiscard]] std::string_view to_string(PacketKind kind) noexcept;

struct CapturedPacket {
  util::SimTime sent_at = 0;
  PacketKind kind = PacketKind::kInterest;
  std::string sender;    // node name
  std::string receiver;  // node name
  ndn::Name name;        // packet name (Interest/Data name; Nack's interest name)
  std::size_t wire_bytes = 0;
  /// Full TLV encoding of the packet (Nack encodes its inner Interest).
  ndn::Buffer wire;
};

class PacketTap {
 public:
  void record(CapturedPacket packet) { packets_.push_back(std::move(packet)); }

  [[nodiscard]] const std::vector<CapturedPacket>& packets() const noexcept {
    return packets_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return packets_.size(); }
  void clear() noexcept { packets_.clear(); }

  /// Count packets of one kind.
  [[nodiscard]] std::size_t count(PacketKind kind) const noexcept;

  /// tcpdump-style text dump: "<time ms> <sender> > <receiver> <kind> <name> (<bytes>B)".
  void dump(std::ostream& out) const;

 private:
  std::vector<CapturedPacket> packets_;
};

}  // namespace ndnp::sim
