#include "sim/chaos.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ndn/packet.hpp"
#include "sim/apps.hpp"
#include "sim/forwarder.hpp"
#include "sim/link.hpp"
#include "sim/scheduler.hpp"
#include "util/invariant.hpp"
#include "util/rng.hpp"

namespace ndnp::sim {

namespace {

// ------------------------------------------------------------------ digest

/// FNV-1a over little-endian u64 words: cheap, stable across platforms.
class Fnv1a {
 public:
  void add(std::uint64_t value) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xffULL;
      hash_ *= 0x100000001b3ULL;
    }
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

void digest_forwarder(Fnv1a& digest, const Forwarder& forwarder) {
  const ForwarderStats& s = forwarder.stats();
  for (const std::uint64_t v :
       {s.interests_received, s.data_received, s.exposed_hits, s.delayed_hits,
        s.simulated_misses, s.true_misses, s.forwarded_interests, s.collapsed_interests,
        s.nonce_drops, s.scope_drops, s.no_route_drops, s.pit_overflows, s.admission_skips,
        s.nacks_sent, s.nacks_received, s.unsolicited_data, s.pit_expirations,
        s.data_forwarded, s.pit_inserts, s.pit_satisfied, s.pit_nack_erased})
    digest.add(v);
  digest.add(forwarder.pit_size());
  const cache::CacheStats& cs = forwarder.cs().stats();
  for (const std::uint64_t v :
       {cs.lookups, cs.matches, cs.inserts, cs.evictions, cs.overwrites, cs.erases, cs.wiped})
    digest.add(v);
  digest.add(forwarder.cs().size());
}

void digest_faces(Fnv1a& digest, const Node& node, LinkFaultCounters& fault_total) {
  for (FaceId face = 0; face < node.face_count(); ++face) {
    const FaceAccounting& acct = node.face_accounting(face);
    digest.add(acct.packets_out);
    digest.add(acct.losses);
    digest.add(acct.deliveries);
    if (const LinkFaultCounters* c = node.face_fault_counters(face)) {
      for (const std::uint64_t v : {c->packets, c->burst_drops, c->flap_drops, c->duplicates,
                                    c->corrupted, c->corrupt_drops, c->reorders, c->spikes})
        digest.add(v);
      fault_total += *c;
    }
  }
}

// ----------------------------------------------------------- chaos episode

LinkFaultConfig random_fault_config(util::Rng& rng) {
  LinkFaultConfig faults;
  faults.burst_loss = util::GilbertElliottConfig::from_loss_and_burst(
      rng.uniform(0.01, 0.15), 1.0 + rng.uniform(0.0, 5.0));
  faults.duplicate_probability = rng.uniform(0.0, 0.06);
  faults.corrupt_probability = rng.uniform(0.0, 0.04);
  faults.reorder_probability = rng.uniform(0.0, 0.10);
  faults.reorder_window = util::millis_f(rng.uniform(0.2, 2.0));
  faults.spike_probability = rng.uniform(0.0, 0.02);
  faults.spike_delay = util::millis_f(rng.uniform(0.5, 4.0));
  if (rng.bernoulli(0.35)) {
    faults.flap_period = util::millis_f(rng.uniform(20.0, 60.0));
    faults.flap_down = util::millis_f(rng.uniform(1.0, 8.0));
  }
  faults.seed = rng.next_u64();
  return faults;
}

}  // namespace

ChaosEpisodeResult run_chaos_episode(const ChaosEpisodeOptions& options) {
  util::Rng rng(options.seed);
  Scheduler scheduler;
  ChaosEpisodeResult result;

  // --- random chain topology: consumer — F0 … Fn — producer ---
  const std::size_t num_forwarders = 1 + rng.uniform_u64(3);
  result.forwarders = num_forwarders;
  constexpr std::array<cache::EvictionPolicy, 4> kEvictions = {
      cache::EvictionPolicy::kLru, cache::EvictionPolicy::kFifo, cache::EvictionPolicy::kLfu,
      cache::EvictionPolicy::kRandom};

  std::vector<std::unique_ptr<Forwarder>> forwarders;
  std::vector<std::size_t> pit_capacities;
  for (std::size_t i = 0; i < num_forwarders; ++i) {
    ForwarderConfig config;
    config.cs_capacity = 8ULL << rng.uniform_u64(4);
    config.eviction = kEvictions[rng.uniform_u64(kEvictions.size())];
    config.pit_timeout = util::millis(static_cast<std::int64_t>(8 + rng.uniform_u64(25)));
    config.pit_capacity = rng.bernoulli(0.5) ? 4 + rng.uniform_u64(28) : 0;
    config.processing_delay = util::micros(static_cast<std::int64_t>(5 + rng.uniform_u64(40)));
    config.honor_scope = rng.bernoulli(0.3);
    config.pad_collapsed_private = rng.bernoulli(0.25);
    config.cache_admission_probability = rng.bernoulli(0.2) ? 0.7 : 1.0;
    config.seed = rng.next_u64();
    pit_capacities.push_back(config.pit_capacity);
    forwarders.push_back(
        std::make_unique<Forwarder>(scheduler, "F" + std::to_string(i), config));
  }

  Consumer consumer(scheduler, "consumer", rng.next_u64());
  ProducerConfig producer_config;
  producer_config.payload_size = 32 + rng.uniform_u64(256);
  producer_config.mark_private = rng.bernoulli(0.3);
  Producer producer(scheduler, "producer", ndn::Name("/chaos"), "chaos-key", producer_config,
                    rng.next_u64());

  // Every link carries an independently seeded fault config.
  const auto faulty_link = [&rng] {
    LinkConfig config = lan_link();
    config.faults = random_fault_config(rng);
    return config;
  };
  connect(consumer, *forwarders.front(), faulty_link());
  for (std::size_t i = 0; i + 1 < num_forwarders; ++i) {
    const auto [up_face, down_face] =
        connect(*forwarders[i], *forwarders[i + 1], faulty_link());
    (void)down_face;
    forwarders[i]->add_route(ndn::Name("/chaos"), up_face);
  }
  const auto [last_up_face, producer_face] =
      connect(*forwarders.back(), producer, faulty_link());
  (void)producer_face;
  forwarders.back()->add_route(ndn::Name("/chaos"), last_up_face);

  // --- node faults: CS wipes and PIT squeezes at random instants ---
  NodeFaultCounters node_fault_counters;
  const auto random_instant = [&rng, &options] {
    return static_cast<util::SimTime>(
        1 + rng.uniform_u64(static_cast<std::uint64_t>(options.horizon)));
  };
  for (std::size_t i = 0; i < num_forwarders; ++i) {
    std::vector<NodeFaultEvent> events;
    if (rng.bernoulli(0.5)) {
      const std::size_t wipes = 1 + rng.uniform_u64(2);
      for (std::size_t w = 0; w < wipes; ++w)
        events.push_back({.at = random_instant(), .kind = NodeFaultKind::kCsWipe});
    }
    if (rng.bernoulli(0.4)) {
      const util::SimTime squeeze_at = random_instant();
      events.push_back({.at = squeeze_at,
                        .kind = NodeFaultKind::kPitSqueeze,
                        .pit_capacity = 2 + rng.uniform_u64(6)});
      events.push_back({.at = squeeze_at + static_cast<util::SimTime>(
                                               1 + rng.uniform_u64(util::millis(30))),
                        .kind = NodeFaultKind::kPitSqueeze,
                        .pit_capacity = pit_capacities[i]});
    }
    if (!events.empty())
      schedule_node_faults(*forwarders[i], events, &node_fault_counters);
  }

  // --- workload: random interests over the horizon ---
  const std::size_t pool_size = 12 + rng.uniform_u64(12);
  std::vector<ndn::Name> pool;
  for (std::size_t k = 0; k < pool_size; ++k)
    pool.emplace_back("/chaos/obj" + std::to_string(k));

  for (std::size_t i = 0; i < options.interests; ++i) {
    ndn::Interest interest;
    interest.name = pool[rng.uniform_u64(pool.size())];
    if (rng.bernoulli(0.15))
      interest.name =
          ndn::Name(interest.name.to_uri() + "/seg" + std::to_string(rng.uniform_u64(3)));
    if (rng.bernoulli(0.04))
      interest.name = ndn::Name("/elsewhere/obj" + std::to_string(rng.uniform_u64(4)));
    if (rng.bernoulli(0.15)) interest.must_be_fresh = true;
    if (rng.bernoulli(0.20)) interest.private_req = true;
    if (rng.bernoulli(0.15)) interest.scope = static_cast<int>(2 + rng.uniform_u64(4));
    if (rng.bernoulli(0.15))
      interest.lifetime = util::millis(static_cast<std::int64_t>(1 + rng.uniform_u64(15)));
    if (rng.bernoulli(0.02)) interest.lifetime = -util::millis(3);  // hostile: must clamp
    scheduler.schedule_at(random_instant(), [&consumer, interest] {
      consumer.express_interest(interest, {}, 0, util::millis(60), {}, {});
    });
    ++result.interests_sent;
  }

  // --- run to quiescence, then audit every structural invariant ---
  const std::uint64_t violations_before = util::invariant_violations();
  try {
    scheduler.run();
    for (const auto& forwarder : forwarders) forwarder->check_invariants();
    consumer.check_face_conservation();
    producer.check_face_conservation();
    NDNP_INVARIANT_CHECK("chaos", consumer.outstanding() == 0,
                         "%zu consumer interests unresolved at quiescence",
                         consumer.outstanding());
  } catch (const util::InvariantViolation& violation) {
    result.violation = violation.what();
  }
  result.invariant_violations = util::invariant_violations() - violations_before;
  if (result.invariant_violations > 0 && result.violation.empty())
    result.violation = "invariant violation (no message captured)";

  result.data_received = consumer.data_received();
  result.timeouts = consumer.timeouts();
  result.consumer_nacks = consumer.nacks_received();
  result.events_processed = scheduler.processed();
  result.end_time = scheduler.now();
  result.node_faults = node_fault_counters;

  Fnv1a digest;
  for (const auto& forwarder : forwarders) {
    digest_forwarder(digest, *forwarder);
    digest_faces(digest, *forwarder, result.link_faults);
  }
  digest_faces(digest, consumer, result.link_faults);
  digest_faces(digest, producer, result.link_faults);
  for (const std::uint64_t v :
       {consumer.data_received(), consumer.timeouts(), consumer.nacks_received(),
        static_cast<std::uint64_t>(consumer.outstanding()), producer.interests_served(),
        producer.interests_unmatched(), node_fault_counters.cs_wipes,
        node_fault_counters.cs_entries_wiped, node_fault_counters.pit_squeezes,
        result.events_processed, static_cast<std::uint64_t>(result.end_time),
        result.invariant_violations})
    digest.add(v);
  result.digest = digest.value();
  return result;
}

// ------------------------------------------------------ differential fuzz

namespace {

// Packet rendering shared by the DUT-side recorders and the reference
// model: a divergence is any difference between the rendered streams.
std::string interest_line(const ndn::Interest& interest, util::SimTime t) {
  std::string line = "t=" + std::to_string(t) + " I " + interest.name.to_uri() +
                     " nonce=" + std::to_string(interest.nonce) +
                     " scope=" + (interest.scope ? std::to_string(*interest.scope) : "-");
  if (interest.must_be_fresh) line += " fresh";
  if (interest.private_req) line += " private";
  return line;
}

std::string data_line(const ndn::Data& data, util::SimTime t) {
  return "t=" + std::to_string(t) + " D " + data.name.to_uri() +
         " bytes=" + std::to_string(data.payload.size());
}

std::string nack_line(const ndn::Nack& nack, util::SimTime t) {
  return "t=" + std::to_string(t) + " N " + std::string(ndn::to_string(nack.reason)) + " " +
         nack.interest.name.to_uri() + " nonce=" + std::to_string(nack.interest.nonce);
}

/// Terminal stub that renders every received packet into a log line.
class RecorderNode final : public Node {
 public:
  RecorderNode(Scheduler& scheduler, std::string name)
      : Node(scheduler, std::move(name), 1) {}

  void receive_interest(const ndn::Interest& interest, FaceId) override {
    log.push_back(interest_line(interest, now()));
  }
  void receive_data(const ndn::Data& data, FaceId) override {
    log.push_back(data_line(data, now()));
  }
  void receive_nack(const ndn::Nack& nack, FaceId) override {
    log.push_back(nack_line(nack, now()));
  }

  std::vector<std::string> log;
};

/// Naive model of the forwarder: plain std::map PIT and LRU CS, no hash
/// indices, no timers — expiry is evaluated lazily by advance_to(). Scoped
/// to the differential harness's fixed setup: NoPrivacy policy, best-route
/// with one upstream (face 1), admission 1.0, padding off.
class ReferenceForwarder {
 public:
  ReferenceForwarder(std::size_t cs_capacity, std::size_t pit_capacity,
                     util::SimDuration pit_timeout, bool honor_scope)
      : cs_capacity_(cs_capacity),
        pit_capacity_(pit_capacity),
        pit_timeout_(pit_timeout),
        honor_scope_(honor_scope) {}

  struct CsEntry {
    ndn::Data data;
    util::SimTime inserted_at = 0;
  };

  struct Stats {
    std::uint64_t interests_received = 0;
    std::uint64_t data_received = 0;
    std::uint64_t nacks_received = 0;
    std::uint64_t exposed_hits = 0;
    std::uint64_t true_misses = 0;
    std::uint64_t collapsed = 0;
    std::uint64_t nonce_drops = 0;
    std::uint64_t scope_drops = 0;
    std::uint64_t no_route_drops = 0;
    std::uint64_t pit_overflows = 0;
    std::uint64_t unsolicited_data = 0;
    std::uint64_t pit_expirations = 0;
    std::uint64_t pit_inserts = 0;
    std::uint64_t pit_satisfied = 0;
    std::uint64_t pit_nack_erased = 0;
    std::uint64_t nacks_sent = 0;
    std::uint64_t data_forwarded = 0;
  };

  /// Lazily expire PIT entries whose deadline has passed. Called before
  /// *and* after each op: the DUT's expiry timers fire before same-time op
  /// events (earlier seq), and a zero/negative-lifetime insert expires
  /// within the op's own cascade.
  void advance_to(util::SimTime t) {
    for (auto it = pit_.begin(); it != pit_.end();) {
      if (it->second.expires_at <= t) {
        it = pit_.erase(it);
        ++stats_.pit_expirations;
      } else {
        ++it;
      }
    }
  }

  void on_interest(const ndn::Interest& interest, FaceId in_face, util::SimTime t) {
    ++stats_.interests_received;
    auto pit_it = pit_.find(interest.name);
    if (pit_it != pit_.end() && pit_it->second.nonces.count(interest.nonce) > 0) {
      ++stats_.nonce_drops;
      return;
    }
    if (CsEntry* entry = cs_find(interest, t)) {
      touch(entry->data.name);
      ++stats_.exposed_hits;
      emit(in_face, data_line(entry->data, t));
      return;
    }
    ++stats_.true_misses;
    if (pit_it != pit_.end()) {
      pit_it->second.nonces.insert(interest.nonce);
      auto& downstreams = pit_it->second.downstreams;
      if (std::find(downstreams.begin(), downstreams.end(), in_face) == downstreams.end())
        downstreams.push_back(in_face);
      ++stats_.collapsed;
      return;
    }
    ndn::Interest upstream = interest;
    if (honor_scope_ && interest.scope) {
      if (*interest.scope <= 2) {
        ++stats_.scope_drops;
        return;
      }
      upstream.scope = *interest.scope - 1;
    }
    if (!route_prefix_.is_prefix_of(interest.name)) {
      ++stats_.no_route_drops;
      ++stats_.nacks_sent;
      emit(in_face, nack_line({.interest = interest, .reason = ndn::NackReason::kNoRoute}, t));
      return;
    }
    if (pit_capacity_ != 0 && pit_.size() >= pit_capacity_) {
      ++stats_.pit_overflows;
      ++stats_.nacks_sent;
      emit(in_face,
           nack_line({.interest = interest, .reason = ndn::NackReason::kPitOverflow}, t));
      return;
    }
    PitEntry entry;
    entry.first_interest = interest;
    entry.downstreams = {in_face};
    entry.nonces = {interest.nonce};
    entry.expires_at =
        t + std::max<util::SimDuration>(interest.lifetime.value_or(pit_timeout_), 0);
    pit_.emplace(interest.name, std::move(entry));
    ++stats_.pit_inserts;
    emit(kUpstreamFace, interest_line(upstream, t));
  }

  void on_data(const ndn::Data& data, util::SimTime t) {
    ++stats_.data_received;
    std::vector<std::map<ndn::Name, PitEntry>::iterator> matches;
    for (std::size_t len = 0; len <= data.name.size(); ++len) {
      auto it = pit_.find(data.name.prefix(len));
      if (it != pit_.end() && data.satisfies(it->second.first_interest))
        matches.push_back(it);
    }
    if (matches.empty()) {
      ++stats_.unsolicited_data;
      return;
    }
    auto exact = cs_.find(data.name);
    if (exact != cs_.end()) {
      exact->second.data = data;  // refresh payload, keep inserted_at
      touch(data.name);
    } else {
      if (cs_capacity_ != 0 && cs_.size() >= cs_capacity_) {
        cs_.erase(lru_.back());  // LRU victim
        lru_.pop_back();
      }
      cs_.emplace(data.name, CsEntry{data, t});
      lru_.push_front(data.name);
    }
    for (auto it : matches) {
      for (const FaceId face : it->second.downstreams) {
        emit(face, data_line(data, t));
        ++stats_.data_forwarded;
      }
      pit_.erase(it);
      ++stats_.pit_satisfied;
    }
  }

  void on_nack(const ndn::Nack& nack, util::SimTime t) {
    ++stats_.nacks_received;
    auto it = pit_.find(nack.interest.name);
    if (it == pit_.end()) return;
    for (const FaceId face : it->second.downstreams) {
      ++stats_.nacks_sent;
      emit(face, nack_line(nack, t));
    }
    pit_.erase(it);
    ++stats_.pit_nack_erased;
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t pit_size() const noexcept { return pit_.size(); }
  [[nodiscard]] std::size_t cs_size() const noexcept { return cs_.size(); }
  [[nodiscard]] const std::vector<std::string>& expected(FaceId face) const {
    return expected_.at(face);
  }
  [[nodiscard]] const std::map<ndn::Name, CsEntry>& cs_entries() const noexcept {
    return cs_;
  }

 private:
  struct PitEntry {
    ndn::Interest first_interest;
    std::vector<FaceId> downstreams;
    std::set<std::uint64_t> nonces;
    util::SimTime expires_at = 0;
  };

  static constexpr FaceId kUpstreamFace = 1;

  void emit(FaceId face, std::string line) { expected_[face].push_back(std::move(line)); }

  [[nodiscard]] static bool fresh_at(const CsEntry& entry, util::SimTime now) noexcept {
    return !entry.data.freshness_period ||
           now <= entry.inserted_at + *entry.data.freshness_period;
  }

  void touch(const ndn::Name& name) {
    const auto it = std::find(lru_.begin(), lru_.end(), name);
    if (it != lru_.end() && it != lru_.begin()) lru_.splice(lru_.begin(), lru_, it);
  }

  /// Exact match first; otherwise the lexicographically smallest strictly
  /// deeper satisfying entry — map order delivers exactly that, and names
  /// sharing the interest prefix form one contiguous map range.
  CsEntry* cs_find(const ndn::Interest& interest, util::SimTime now) {
    const bool check_fresh = interest.must_be_fresh;
    const auto exact = cs_.find(interest.name);
    if (exact != cs_.end() && (!check_fresh || fresh_at(exact->second, now)))
      return &exact->second;
    for (auto it = cs_.upper_bound(interest.name); it != cs_.end(); ++it) {
      if (!interest.name.is_prefix_of(it->first)) break;
      if (!it->second.data.satisfies(interest)) continue;
      if (check_fresh && !fresh_at(it->second, now)) continue;
      return &it->second;
    }
    return nullptr;
  }

  std::size_t cs_capacity_;
  std::size_t pit_capacity_;
  util::SimDuration pit_timeout_;
  bool honor_scope_;
  ndn::Name route_prefix_ = ndn::Name("/d");
  std::map<ndn::Name, PitEntry> pit_;
  std::map<ndn::Name, CsEntry> cs_;
  std::list<ndn::Name> lru_;  // front = most recently used
  std::array<std::vector<std::string>, 3> expected_;  // indexed by DUT face
  Stats stats_;
};

}  // namespace

DifferentialResult run_differential_episode(std::uint64_t seed, std::size_t num_ops) {
  util::Rng rng(seed);
  Scheduler scheduler;

  ForwarderConfig config;
  config.cs_capacity = 8;
  config.eviction = cache::EvictionPolicy::kLru;
  config.pit_timeout = util::millis(static_cast<std::int64_t>(5 + rng.uniform_u64(20)));
  config.pit_capacity = rng.bernoulli(0.5) ? 3 + rng.uniform_u64(5) : 0;
  config.processing_delay = 0;  // all cascades settle at the op timestamp
  config.honor_scope = rng.bernoulli(0.5);
  config.cache_admission_probability = 1.0;
  config.pad_collapsed_private = false;
  config.seed = rng.next_u64();

  Forwarder dut(scheduler, "dut", config);
  RecorderNode down_a(scheduler, "downA");
  RecorderNode up(scheduler, "up");
  RecorderNode down_b(scheduler, "downB");
  connect(down_a, dut, {});  // DUT face 0: downstream A
  connect(dut, up, {});      // DUT face 1: upstream
  connect(down_b, dut, {});  // DUT face 2: downstream B
  dut.add_route(ndn::Name("/d"), 1);

  ReferenceForwarder ref(config.cs_capacity, config.pit_capacity, config.pit_timeout,
                         config.honor_scope);

  // Small name universe: heavy collisions exercise collapse, nonce dedup,
  // prefix satisfaction and LRU eviction. "/x/off" has no route.
  std::vector<ndn::Name> pool;
  for (const char* leaf : {"a", "b", "c", "d", "e", "f"})
    pool.emplace_back(std::string("/d/") + leaf);
  for (const char* leaf : {"a", "b", "c"})
    for (const char* seg : {"0", "1"})
      pool.emplace_back(std::string("/d/") + leaf + "/s" + seg);
  pool.emplace_back("/x/off");
  pool.emplace_back("/d/private");  // name-marked private content

  std::deque<std::pair<ndn::Name, std::uint64_t>> recent_nonces;
  DifferentialResult result;
  util::SimTime t = 0;

  const std::array<RecorderNode*, 3> recorders = {&down_a, &up, &down_b};
  const auto compare = [&](std::size_t op) {
    const auto fail = [&](std::string what) {
      if (result.divergences == 0)
        result.first_divergence =
            "seed " + std::to_string(seed) + " op " + std::to_string(op) + ": " + what;
      ++result.divergences;
    };
    for (FaceId face = 0; face < recorders.size(); ++face) {
      const std::vector<std::string>& actual = recorders[face]->log;
      const std::vector<std::string>& expected = ref.expected(face);
      const std::size_t common = std::min(actual.size(), expected.size());
      for (std::size_t i = 0; i < common; ++i)
        if (actual[i] != expected[i]) {
          fail("face " + std::to_string(face) + " line " + std::to_string(i) +
               ": expected \"" + expected[i] + "\" got \"" + actual[i] + "\"");
          return;
        }
      if (actual.size() != expected.size()) {
        const bool extra = actual.size() > expected.size();
        fail("face " + std::to_string(face) +
             (extra ? ": unexpected \"" + actual[common] + "\""
                    : ": missing \"" + expected[common] + "\""));
        return;
      }
    }
    const ForwarderStats& ds = dut.stats();
    const ReferenceForwarder::Stats& rs = ref.stats();
    const std::array<std::tuple<const char*, std::uint64_t, std::uint64_t>, 19> counters = {{
        {"interests_received", ds.interests_received, rs.interests_received},
        {"data_received", ds.data_received, rs.data_received},
        {"nacks_received", ds.nacks_received, rs.nacks_received},
        {"exposed_hits", ds.exposed_hits, rs.exposed_hits},
        {"true_misses", ds.true_misses, rs.true_misses},
        {"collapsed_interests", ds.collapsed_interests, rs.collapsed},
        {"nonce_drops", ds.nonce_drops, rs.nonce_drops},
        {"scope_drops", ds.scope_drops, rs.scope_drops},
        {"no_route_drops", ds.no_route_drops, rs.no_route_drops},
        {"pit_overflows", ds.pit_overflows, rs.pit_overflows},
        {"unsolicited_data", ds.unsolicited_data, rs.unsolicited_data},
        {"pit_expirations", ds.pit_expirations, rs.pit_expirations},
        {"pit_inserts", ds.pit_inserts, rs.pit_inserts},
        {"pit_satisfied", ds.pit_satisfied, rs.pit_satisfied},
        {"pit_nack_erased", ds.pit_nack_erased, rs.pit_nack_erased},
        {"nacks_sent", ds.nacks_sent, rs.nacks_sent},
        {"data_forwarded", ds.data_forwarded, rs.data_forwarded},
        {"forwarded_interests", ds.forwarded_interests, rs.pit_inserts},
        {"pit_size", dut.pit_size(), ref.pit_size()},
    }};
    for (const auto& [label, dut_value, ref_value] : counters)
      if (dut_value != ref_value) {
        fail(std::string(label) + " dut=" + std::to_string(dut_value) +
             " ref=" + std::to_string(ref_value));
        return;
      }
    if (dut.cs().size() != ref.cs_size()) {
      fail("cs_size dut=" + std::to_string(dut.cs().size()) +
           " ref=" + std::to_string(ref.cs_size()));
      return;
    }
    for (const auto& [name, entry] : ref.cs_entries())
      if (!dut.cs().contains(name)) {
        fail("cs missing " + name.to_uri());
        return;
      }
  };

  for (std::size_t op = 0; op < num_ops && result.divergences == 0; ++op) {
    t += 1 + static_cast<util::SimDuration>(rng.uniform_u64(util::millis(2)));
    scheduler.run_until(t);
    ref.advance_to(t);

    const double kind = rng.uniform01();
    if (kind < 0.55) {
      ndn::Interest interest;
      interest.name = pool[rng.uniform_u64(pool.size())];
      if (!recent_nonces.empty() && rng.bernoulli(0.2)) {
        const auto& past = recent_nonces[rng.uniform_u64(recent_nonces.size())];
        interest.name = past.first;  // same name: candidate nonce-loop drop
        interest.nonce = past.second;
      } else {
        interest.nonce = 1 + rng.uniform_u64(1ULL << 20);
      }
      recent_nonces.emplace_back(interest.name, interest.nonce);
      if (recent_nonces.size() > 32) recent_nonces.pop_front();
      if (rng.bernoulli(0.15)) interest.must_be_fresh = true;
      if (rng.bernoulli(0.15)) interest.private_req = true;
      if (rng.bernoulli(0.20)) interest.scope = static_cast<int>(1 + rng.uniform_u64(4));
      if (rng.bernoulli(0.25)) {
        if (rng.bernoulli(0.1))
          interest.lifetime = -util::millis(2);  // hostile: DUT must clamp, not abort
        else
          interest.lifetime =
              static_cast<std::int64_t>(rng.uniform_u64(util::millis(8)));  // includes 0
      }
      const FaceId in_face = rng.bernoulli(0.7) ? 0 : 2;
      dut.receive_interest(interest, in_face);
      scheduler.run_until(t);
      ref.on_interest(interest, in_face, t);
      ref.advance_to(t);  // zero/negative-lifetime entries die immediately
    } else if (kind < 0.85) {
      ndn::Name name = pool[rng.uniform_u64(pool.size())];
      if (rng.bernoulli(0.2))
        name = ndn::Name(name.to_uri() + "/v" + std::to_string(rng.uniform_u64(2)));
      ndn::Data data =
          ndn::make_data(name, std::string(1 + rng.uniform_u64(64), 'x'), "prod", "key",
                         rng.bernoulli(0.2));
      if (rng.bernoulli(0.15)) data.exact_match_only = true;
      if (rng.bernoulli(0.30))
        data.freshness_period =
            static_cast<std::int64_t>(rng.uniform_u64(util::millis(6)));  // includes 0
      dut.receive_data(data, 1);
      scheduler.run_until(t);
      ref.on_data(data, t);
    } else {
      ndn::Nack nack;
      nack.interest.name = pool[rng.uniform_u64(pool.size())];
      nack.interest.nonce = 1 + rng.uniform_u64(1ULL << 20);
      constexpr std::array<ndn::NackReason, 3> kReasons = {ndn::NackReason::kNoRoute,
                                                           ndn::NackReason::kPitOverflow,
                                                           ndn::NackReason::kDuplicate};
      nack.reason = kReasons[rng.uniform_u64(kReasons.size())];
      dut.receive_nack(nack, 1);
      scheduler.run_until(t);
      ref.on_nack(nack, t);
    }
    ++result.ops;
    compare(op);
  }
  return result;
}

}  // namespace ndnp::sim
