// NDN forwarder (router).
//
// Implements the three-table NDN node model of Section II:
//  - CS  (ContentStore): content cache, consulted first; what the privacy
//         policy guards;
//  - PIT (Pending Interest Table): collapses duplicate interests and
//         remembers downstream faces for returning Data;
//  - FIB (Forwarding Information Base): longest-prefix-match routing of
//         interests toward producers.
//
// The attached core::CachePrivacyPolicy decides how cache hits are exposed
// (expose / delay / simulate-miss); a simulated miss makes the forwarder
// behave exactly as if the lookup had failed, including forwarding the
// interest upstream. Scope handling is configurable because NDN routers
// "are allowed to disregard this field" — the scope-probe attack only works
// against honoring routers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cache/content_store.hpp"
#include "core/policy.hpp"
#include "sim/node.hpp"
#include "telemetry/telemetry.hpp"
#include "util/open_hash.hpp"

namespace ndnp::sim {

/// How interests are spread over multiple FIB next hops.
enum class ForwardingStrategy {
  kBestRoute,   // always the first registered next hop
  kRoundRobin,  // rotate per prefix
  kMulticast,   // all next hops at once (PIT dedups the replies)
};

[[nodiscard]] std::string_view to_string(ForwardingStrategy strategy) noexcept;

struct ForwarderConfig {
  std::size_t cs_capacity = 10'000;  // 0 = unlimited
  cache::EvictionPolicy eviction = cache::EvictionPolicy::kLru;
  /// Whether to honor Interest.scope (decrement-and-drop); off by default,
  /// as permitted by the NDN spec.
  bool honor_scope = false;
  /// Default PIT entry lifetime; Interest.lifetime overrides per interest.
  util::SimDuration pit_timeout = util::seconds(4);
  /// Maximum concurrent PIT entries; 0 = unlimited. Overflowing interests
  /// are dropped.
  std::size_t pit_capacity = 0;
  /// Per-packet processing latency (lookup + forwarding decision).
  util::SimDuration processing_delay = util::micros(20);
  ForwardingStrategy strategy = ForwardingStrategy::kBestRoute;
  /// Probability of admitting arriving Data into the CS (1 = cache all,
  /// the paper's setting; lower values are the classic cache-pollution
  /// mitigation the admission ablation explores).
  double cache_admission_probability = 1.0;
  /// Send NACKs downstream on no-route / PIT-overflow (scope drops stay
  /// silent: an honoring router reveals nothing extra to scope probes).
  bool send_nacks = true;
  /// Countermeasure to the PIT-collapse side channel (see
  /// attack/pit_probe.hpp): when an interest for *private* content
  /// collapses onto a pending entry, delay its Data copy so the collapsed
  /// requester observes the same latency as a full fetch started at its
  /// own arrival time — the collapse shortcut (and thus the in-flight
  /// oracle) disappears, at zero bandwidth cost.
  bool pad_collapsed_private = false;
  std::uint64_t seed = 1;
};

struct ForwarderStats {
  std::uint64_t interests_received = 0;
  std::uint64_t data_received = 0;
  std::uint64_t exposed_hits = 0;
  std::uint64_t delayed_hits = 0;
  std::uint64_t simulated_misses = 0;
  std::uint64_t true_misses = 0;
  std::uint64_t forwarded_interests = 0;
  std::uint64_t collapsed_interests = 0;
  std::uint64_t nonce_drops = 0;
  std::uint64_t scope_drops = 0;
  std::uint64_t no_route_drops = 0;
  std::uint64_t pit_overflows = 0;
  std::uint64_t admission_skips = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t unsolicited_data = 0;
  std::uint64_t pit_expirations = 0;
  std::uint64_t data_forwarded = 0;
  // PIT entry life-cycle ledger (conservation law checked by
  // check_invariants(): inserts == satisfied + expirations + nack_erased +
  // resident entries).
  std::uint64_t pit_inserts = 0;
  std::uint64_t pit_satisfied = 0;
  std::uint64_t pit_nack_erased = 0;
};

class Forwarder final : public Node {
 public:
  /// `policy` defaults to NoPrivacy when null.
  Forwarder(Scheduler& scheduler, std::string name, ForwarderConfig config,
            std::unique_ptr<core::CachePrivacyPolicy> policy = nullptr);

  /// Route interests under `prefix` out of `next_hop`. An empty prefix is
  /// the default route. Longest prefix wins. Registering several next hops
  /// for one prefix enables the configured multipath strategy; duplicate
  /// registrations are ignored.
  void add_route(const ndn::Name& prefix, FaceId next_hop);

  void receive_interest(const ndn::Interest& interest, FaceId in_face) override;
  void receive_data(const ndn::Data& data, FaceId in_face) override;
  void receive_nack(const ndn::Nack& nack, FaceId in_face) override;

  [[nodiscard]] const cache::ContentStore& cs() const noexcept { return cs_; }
  [[nodiscard]] cache::ContentStore& cs() noexcept { return cs_; }
  [[nodiscard]] const ForwarderStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ForwarderConfig& config() const noexcept { return config_; }
  [[nodiscard]] const core::CachePrivacyPolicy& policy() const noexcept { return *policy_; }
  [[nodiscard]] std::size_t pit_size() const noexcept { return pit_.size(); }

  /// Shrink or grow the PIT capacity mid-run (0 = unlimited). Used by the
  /// fault engine's PIT-squeeze; existing entries above a shrunken capacity
  /// stay resident and drain naturally — only new inserts are refused.
  void set_pit_capacity(std::size_t capacity) noexcept { config_.pit_capacity = capacity; }

  /// Structural invariants of this forwarder: the PIT entry-conservation
  /// ledger, interest-disposition accounting, CS integrity and per-face
  /// packet conservation. Only meaningful at quiescence (drained
  /// scheduler); throws util::InvariantViolation on breach, no-op with
  /// -DNDNP_INVARIANT=0.
  void check_invariants() const;

  /// Publish forwarder, content-store and policy counters into `registry`
  /// under `prefix` ("<prefix>.interests_received", "<prefix>.cs.*", ...).
  /// Adds current totals; call once per snapshot.
  void export_metrics(util::MetricsRegistry& registry, const std::string& prefix) const;

  /// Attach an online telemetry hub (not owned; pass nullptr to detach).
  /// Registers this forwarder's CS/PIT occupancy gauges as time-series
  /// probes and, while armed, feeds every interest disposition in
  /// handle_interest into the hub's detectors. The hub only observes —
  /// arming never changes forwarding behavior or event order. The hot-path
  /// hook compiles out entirely under -DNDNP_TELEMETRY=0 (arming still
  /// registers the probes so recorders keep a stable column set).
  void arm_telemetry(telemetry::TelemetryHub* hub);
  [[nodiscard]] telemetry::TelemetryHub* telemetry() const noexcept { return telemetry_; }

 private:
  struct Downstream {
    FaceId face = 0;
    util::SimTime arrived_at = util::kTimeUnset;
  };

  /// PIT entries are keyed by interest name through an open-addressing
  /// hash index (util::OpenHashTable) on Name::hash64() — the name itself
  /// lives in first_interest.name, so the hash table stores no name copy.
  struct PitEntry {
    ndn::Interest first_interest;
    std::vector<Downstream> downstreams;
    std::set<std::uint64_t> nonces;
    util::SimTime created_at = util::kTimeUnset;
    /// created_at + clamped lifetime: the expiry timer fires exactly here,
    /// so any later observation of this entry is a leak (invariant).
    util::SimTime expires_at = util::kTimeUnset;
    std::uint64_t version = 0;  // guards the timeout event against reuse
  };

  struct FibEntry {
    std::vector<FaceId> next_hops;
    std::size_t round_robin_cursor = 0;
  };

  void handle_interest(const ndn::Interest& interest, FaceId in_face);
  void handle_data(const ndn::Data& data, FaceId in_face);
  void handle_nack(const ndn::Nack& nack, FaceId in_face);
  /// `name_hash` is Name::hash64(interest.name), computed once per packet
  /// by the caller and threaded through so the PIT never rehashes.
  void forward_interest(const ndn::Interest& interest, FaceId in_face,
                        std::uint64_t name_hash);
  /// Exact-name PIT lookup/erase by cached hash.
  [[nodiscard]] PitEntry* pit_find(std::uint64_t name_hash, const ndn::Name& name) noexcept;
  bool pit_erase(std::uint64_t name_hash, const ndn::Name& name) noexcept;
  [[nodiscard]] FibEntry* fib_lookup(const ndn::Name& name);
  /// Pick outgoing faces per the strategy, excluding the arrival face.
  [[nodiscard]] std::vector<FaceId> select_next_hops(FibEntry& entry, FaceId in_face);
  void schedule_pit_timeout(const ndn::Name& name, std::uint64_t name_hash,
                            std::uint64_t version, util::SimDuration lifetime);

  ForwarderConfig config_;
  telemetry::TelemetryHub* telemetry_ = nullptr;
  cache::ContentStore cs_;
  std::unique_ptr<core::CachePrivacyPolicy> policy_;
  util::OpenHashTable<PitEntry> pit_;
  std::map<ndn::Name, FibEntry> fib_;
  std::uint64_t next_pit_version_ = 0;
  ForwarderStats stats_;
};

}  // namespace ndnp::sim
