// End-host applications: Consumer and Producer.
//
// Consumer issues interests and reports the Data plus the measured RTT to a
// callback — RTT measurement is all the paper's adversary needs. Producer
// owns a namespace and serves content from a published repository or by
// auto-generating it, optionally marked private (producer-driven marking,
// Section V).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/node.hpp"

namespace ndnp::sim {

class Consumer final : public Node {
 public:
  using FetchCallback = std::function<void(const ndn::Data&, util::SimDuration rtt)>;
  using TimeoutCallback = std::function<void(const ndn::Interest&)>;
  using NackCallback = std::function<void(const ndn::Nack&)>;

  Consumer(Scheduler& scheduler, std::string name, std::uint64_t seed);

  /// Send `interest` out of `face`; `on_data` fires with the round-trip
  /// time when matching Data arrives. A zero `timeout` disables timeout
  /// handling; otherwise `on_timeout` (if set) fires once when the
  /// deadline passes unanswered.
  /// `on_nack` (optional) fires if the network rejects the interest with a
  /// NACK before any Data arrives.
  void express_interest(ndn::Interest interest, FetchCallback on_data, FaceId face = 0,
                        util::SimDuration timeout = 0, TimeoutCallback on_timeout = {},
                        NackCallback on_nack = {});

  /// Convenience: plain interest for `name` (fresh nonce, no flags).
  void fetch(const ndn::Name& name, FetchCallback on_data, FaceId face = 0);

  /// Fresh random nonce.
  [[nodiscard]] std::uint64_t make_nonce() noexcept { return rng().next_u64(); }

  void receive_interest(const ndn::Interest& interest, FaceId in_face) override;
  void receive_data(const ndn::Data& data, FaceId in_face) override;
  void receive_nack(const ndn::Nack& nack, FaceId in_face) override;

  [[nodiscard]] std::size_t outstanding() const noexcept { return pending_count_; }
  [[nodiscard]] std::uint64_t data_received() const noexcept { return data_received_; }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }
  [[nodiscard]] std::uint64_t nacks_received() const noexcept { return nacks_received_; }

 private:
  struct Pending {
    std::uint64_t id = 0;
    ndn::Interest interest;
    util::SimTime sent_at = util::kTimeUnset;
    FetchCallback on_data;
    TimeoutCallback on_timeout;
    NackCallback on_nack;
  };

  std::map<ndn::Name, std::vector<Pending>> pending_;
  std::size_t pending_count_ = 0;
  std::uint64_t next_id_ = 0;
  std::uint64_t data_received_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t nacks_received_ = 0;
};

struct ProducerConfig {
  /// Payload bytes for auto-generated content.
  std::size_t payload_size = 1024;
  /// Time to produce/sign a content object.
  util::SimDuration processing_delay = util::micros(50);
  /// Auto-generated content is marked private by the producer.
  bool mark_private = false;
  /// Serve any name under the prefix, generating content on the fly (in
  /// addition to explicitly published objects).
  bool auto_generate = true;
  /// When > 0, auto-generated content gets a correlation group id derived
  /// from this many leading name components (for the grouping experiments).
  std::size_t group_namespace_len = 0;
};

class Producer final : public Node {
 public:
  Producer(Scheduler& scheduler, std::string name, ndn::Name prefix, std::string signing_key,
           ProducerConfig config, std::uint64_t seed);

  /// Register an exact content object served for matching interests.
  void publish(ndn::Data data);

  void receive_interest(const ndn::Interest& interest, FaceId in_face) override;
  void receive_data(const ndn::Data& data, FaceId in_face) override;

  [[nodiscard]] const ndn::Name& prefix() const noexcept { return prefix_; }
  [[nodiscard]] std::uint64_t interests_served() const noexcept { return interests_served_; }
  [[nodiscard]] std::uint64_t interests_unmatched() const noexcept {
    return interests_unmatched_;
  }

 private:
  [[nodiscard]] const ndn::Data* lookup_repo(const ndn::Interest& interest) const;

  ndn::Name prefix_;
  std::string signing_key_;
  ProducerConfig config_;
  std::map<ndn::Name, ndn::Data> repo_;
  std::uint64_t interests_served_ = 0;
  std::uint64_t interests_unmatched_ = 0;
};

}  // namespace ndnp::sim
