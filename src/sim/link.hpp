// Point-to-point link model.
//
// Per-traversal delay = propagation latency + transmission (size/bandwidth,
// when a finite bandwidth is configured) + random jitter. Optional loss.
// Jitter is what limits the paper's timing attacks: on a LAN it is
// negligible and hit/miss separate perfectly; across WAN hops it widens the
// distributions (Figure 3(b)); when the producer sits one low-latency hop
// past the probed router it drowns the hit/miss gap almost entirely
// (Figure 3(c), ~59 %).
#pragma once

#include <cstddef>
#include <memory>

#include "sim/faults.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace ndnp::sim {

class PacketTap;

enum class JitterKind {
  kNone,
  /// Uniform extra delay in [a, b] (a, b in nanoseconds).
  kUniform,
  /// Normal(mean=a, stddev=b), truncated at zero.
  kTruncNormal,
  /// Lognormal: exp(N(mu=a', sigma=b')) scaled so the *median* extra delay
  /// is `a` ns with shape parameter sigma = b. Heavy upper tail, the
  /// classic WAN queueing shape.
  kLognormal,
};

struct LinkConfig {
  /// One-way base propagation delay.
  util::SimDuration latency = 0;
  /// Bits per second; 0 = infinite (no transmission delay component).
  double bandwidth_bps = 0.0;
  JitterKind jitter = JitterKind::kNone;
  /// Jitter parameters, in nanoseconds (interpretation per JitterKind).
  double jitter_a = 0.0;
  double jitter_b = 0.0;
  /// Independent per-packet loss probability.
  double loss_probability = 0.0;
  /// Serialize transmissions per direction behind a FIFO queue (requires a
  /// finite bandwidth): later packets wait for earlier ones, so
  /// cross-traffic adds genuine queueing delay instead of iid jitter.
  bool fifo_queue = false;
  /// Optional capture tap (see sim/capture.hpp): every packet transmitted
  /// over the link, in either direction, is recorded (including packets
  /// the link then loses — the tap sits at the sender).
  std::shared_ptr<PacketTap> tap;
  /// Deterministic fault injection (sim/faults.hpp). Disabled by default;
  /// a disabled config adds zero overhead and zero RNG draws, so existing
  /// experiments are bit-identical with or without this field.
  LinkFaultConfig faults;

  /// Sample the total one-way delay for a packet of `wire_bytes`.
  [[nodiscard]] util::SimDuration sample_delay(util::Rng& rng, std::size_t wire_bytes) const;

  /// Sample whether this traversal drops the packet.
  [[nodiscard]] bool sample_loss(util::Rng& rng) const;
};

/// Convenience constructors for the experiment topologies.
[[nodiscard]] LinkConfig lan_link(double latency_ms = 0.05, double jitter_ms = 0.01);
[[nodiscard]] LinkConfig wan_link(double latency_ms = 2.0, double jitter_median_ms = 0.3,
                                  double jitter_sigma = 0.5);
/// Intra-host IPC "link" between an application and the local NDN daemon.
[[nodiscard]] LinkConfig local_ipc_link(double latency_ms = 0.02, double jitter_ms = 0.01);

}  // namespace ndnp::sim
