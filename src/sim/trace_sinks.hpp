// Exporters and forensics for util::Tracer captures.
//
// Three consumers of a recorded event stream:
//  1. JSONL — one flat JSON object per event, greppable and trivially
//     re-parseable (parse_trace_jsonl reads it back for trace_inspect).
//  2. Chrome trace-event JSON — loadable in Perfetto (ui.perfetto.dev) or
//     chrome://tracing. Nodes map to processes, components to threads;
//     simulation-time events become instants ("i"), NDNP_TRACE_SCOPE spans
//     become complete events ("X") whose duration is *wall-clock* time (the
//     only nondeterministic field in a capture; see docs/OBSERVABILITY.md).
//  3. probe_forensics — joins an adversary's attack_probe timeline against
//     the router's ground-truth cs_lookup/policy_decision events and issues
//     a per-probe verdict: an inspectable replay of the paper's Fig. 3
//     cache-probing mechanics and of what a privacy policy hid.
//
// Everything here is deterministic given the event stream (the wall-clock
// span durations are reproduced verbatim, not re-measured).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/detectors.hpp"
#include "util/sim_time.hpp"
#include "util/tracing.hpp"

namespace ndnp::sim {

/// A trace event with its labels resolved to strings — the schema of one
/// JSONL line, and what parse_trace_jsonl gives back.
struct FlatEvent {
  util::SimTime t = 0;
  std::string type;    // util::to_string(TraceEventType)
  std::string node;
  std::string comp;
  std::string name;    // content name URI, "" when not applicable
  std::string detail;  // "key=value ..." pairs, event-type specific
  std::int64_t face = -1;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

/// Resolve a tracer's interned events into FlatEvents, oldest first.
[[nodiscard]] std::vector<FlatEvent> flatten(const util::Tracer& tracer);

/// Pull "key=value" out of a FlatEvent::detail string ("" when absent).
[[nodiscard]] std::string detail_field(const std::string& detail, const std::string& key);

/// One JSON object per line:
/// {"t":0,"type":"cs_lookup","node":"R","comp":"cs","face":-1,"name":"/a",
///  "detail":"result=hit depth=1 policy=LRU","a":0,"b":0}
void write_trace_jsonl(const std::vector<FlatEvent>& events, std::ostream& out);

/// Chrome trace-event JSON ({"traceEvents":[...]}): process/thread name
/// metadata, "i" instants at simulation microseconds, "X" spans whose
/// `dur` is the recorded wall-clock duration in microseconds.
void write_chrome_trace(const std::vector<FlatEvent>& events, std::ostream& out);

/// Write `tracer`'s events to `path`; a ".jsonl" extension selects the
/// JSONL format, anything else the Chrome trace-event format. Throws
/// std::runtime_error when the file cannot be written.
void write_trace_file(const util::Tracer& tracer, const std::string& path);

/// Read back a JSONL capture (as produced by write_trace_jsonl). Throws
/// std::runtime_error on malformed lines.
[[nodiscard]] std::vector<FlatEvent> parse_trace_jsonl(std::istream& in);

// ---------------------------------------------------------------------------
// Attack forensics.

enum class ProbeVerdict : std::uint8_t {
  kTrueHit,        // cached, policy exposed the hit
  kDelayedHit,     // cached, policy served it behind an artificial delay
  kSimulatedMiss,  // cached, policy mimicked a miss
  kTrueMiss,       // not cached (or only a stale copy)
  kUnknown,        // no cache lookup found inside the probe's RTT window
};

[[nodiscard]] std::string_view to_string(ProbeVerdict verdict) noexcept;

/// One attack_probe event joined against the cache's ground truth.
struct ProbeForensics {
  util::SimTime probe_time = 0;  // completion time of the probe
  std::string name;
  std::string truth;             // the probe's own "truth=..." annotation
  std::int64_t rtt = 0;          // measured RTT in ns (attack_probe's `a`)
  std::int64_t round = 0;        // probe round (attack_probe's `b`)
  ProbeVerdict verdict = ProbeVerdict::kUnknown;
  std::string decided_by;        // node whose cs_lookup decided the verdict
  /// Whether the verdict's cached/uncached view matches the probe's truth
  /// annotation (kUnknown never agrees).
  bool agrees = false;
  /// fault_inject events inside the probe's RTT window: link faults on this
  /// probe's name plus node faults (CS wipe / PIT squeeze, which hit every
  /// name). A disagreement or Unknown verdict with faults != 0 is
  /// attributable to injected chaos rather than a forensics/tracer bug.
  std::int64_t faults = 0;
  std::string fault_causes;      // comma-joined distinct causes, "" when clean
};

struct ForensicsReport {
  std::vector<ProbeForensics> probes;
  std::size_t true_hits = 0;
  std::size_t delayed_hits = 0;
  std::size_t simulated_misses = 0;
  std::size_t true_misses = 0;
  std::size_t unknown = 0;
  std::size_t agreements = 0;
  /// Total fault_inject events in the capture / probes with faults in
  /// their RTT window (both 0 on a clean run — the summary line then omits
  /// the fault fields entirely, keeping clean outputs unchanged).
  std::size_t fault_events = 0;
  std::size_t faulted_probes = 0;

  [[nodiscard]] double agreement_rate() const noexcept {
    return probes.empty() ? 0.0
                          : static_cast<double>(agreements) /
                                static_cast<double>(probes.size());
  }
  /// Human-readable per-probe table plus summary line.
  [[nodiscard]] std::string format_table() const;
};

/// Join every attack_probe in `events` against the cache transitions inside
/// its RTT window [t-a, t]: the first matching cs_lookup fixes cached vs
/// not, and the policy_decision that follows it (same node, same name)
/// distinguishes exposed, delayed and simulated outcomes. `events` must be
/// in recording order (which is chronological for a single run).
[[nodiscard]] ForensicsReport probe_forensics(const std::vector<FlatEvent>& events);

// ---------------------------------------------------------------------------
// Telemetry scorecard: detector alarms vs attack ground truth.

/// Per-detector verdict of the fixed-window join (see telemetry_scorecard).
struct DetectorScore {
  std::string detector;               // "hit_rate_shift", ..., or "any"
  std::size_t alarms = 0;             // raw telemetry_alarm events
  std::size_t alarmed_windows = 0;
  std::size_t true_positive_windows = 0;   // alarmed AND attack-active
  std::size_t false_positive_windows = 0;  // alarmed, no attack activity
  double precision = 0.0;  // TP windows / alarmed windows (1 when none alarmed)
  double recall = 0.0;     // TP windows / attack windows (0 when no attack)
  /// First alarm at-or-after the first attack probe minus that probe's
  /// time; negative when the detector never fired during the attack.
  double detection_latency_ms = -1.0;
};

struct TelemetryScorecard {
  util::SimDuration window = 0;
  std::size_t total_windows = 0;
  std::size_t attack_windows = 0;  // windows containing >= 1 attack_probe
  std::size_t probes = 0;          // attack_probe events
  std::size_t alarms = 0;          // telemetry_alarm events
  /// One row per telemetry::DetectorKind plus a final "any" row combining
  /// every detector (the headline recall the CI gate checks).
  std::vector<DetectorScore> detectors;

  /// The "any" row (always present; zeroed scores when `events` was empty).
  [[nodiscard]] const DetectorScore& any() const { return detectors.back(); }
  /// Human-readable per-detector table plus a summary line.
  [[nodiscard]] std::string format_table() const;
};

/// Score a capture's telemetry_alarm stream against its attack_probe ground
/// truth by fixed-window join: the span [0, t_max] is cut into windows of
/// `width`; a window is attack-active when it contains a probe, and a
/// detector credits it when it raised an alarm inside it. Precision, recall
/// and detection latency per detector (plus "any") follow. Deterministic
/// given the event stream; `width` must be positive.
[[nodiscard]] TelemetryScorecard telemetry_scorecard(const std::vector<FlatEvent>& events,
                                                     util::SimDuration width);

}  // namespace ndnp::sim
