#include "sim/apps.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace ndnp::sim {

// ---------------------------------------------------------------------------
// Consumer

Consumer::Consumer(Scheduler& scheduler, std::string name, std::uint64_t seed)
    : Node(scheduler, std::move(name), seed) {}

void Consumer::express_interest(ndn::Interest interest, FetchCallback on_data, FaceId face,
                                util::SimDuration timeout, TimeoutCallback on_timeout,
                                NackCallback on_nack) {
  if (interest.nonce == 0) interest.nonce = make_nonce();
  Pending pending;
  pending.id = next_id_++;
  pending.interest = interest;
  pending.sent_at = now();
  pending.on_data = std::move(on_data);
  pending.on_timeout = std::move(on_timeout);
  pending.on_nack = std::move(on_nack);
  const std::uint64_t id = pending.id;
  const ndn::Name key = interest.name;
  pending_[key].push_back(std::move(pending));
  ++pending_count_;

  if (timeout > 0) {
    scheduler().schedule_in(timeout, [this, key, id] {
      const auto map_it = pending_.find(key);
      if (map_it == pending_.end()) return;
      auto& list = map_it->second;
      const auto it = std::find_if(list.begin(), list.end(),
                                   [id](const Pending& p) { return p.id == id; });
      if (it == list.end()) return;
      Pending expired = std::move(*it);
      list.erase(it);
      if (list.empty()) pending_.erase(map_it);
      --pending_count_;
      ++timeouts_;
      if (expired.on_timeout) expired.on_timeout(expired.interest);
    });
  }

  send_interest(face, interest);
}

void Consumer::fetch(const ndn::Name& name, FetchCallback on_data, FaceId face) {
  ndn::Interest interest;
  interest.name = name;
  express_interest(std::move(interest), std::move(on_data), face);
}

void Consumer::receive_interest(const ndn::Interest& interest, FaceId) {
  // Consumers do not serve content.
  util::log(util::LogLevel::kDebug, "%s: ignoring interest %s", name().c_str(),
            interest.name.to_uri().c_str());
}

void Consumer::receive_data(const ndn::Data& data, FaceId) {
  ++data_received_;
  // Candidate pending interests are exactly the prefixes of the data name.
  std::vector<Pending> satisfied;
  for (std::size_t len = 0; len <= data.name.size(); ++len) {
    const auto map_it = pending_.find(data.name.prefix(len));
    if (map_it == pending_.end()) continue;
    auto& list = map_it->second;
    for (auto it = list.begin(); it != list.end();) {
      if (data.satisfies(it->interest)) {
        satisfied.push_back(std::move(*it));
        it = list.erase(it);
        --pending_count_;
      } else {
        ++it;
      }
    }
    if (list.empty()) pending_.erase(map_it);
  }
  for (Pending& pending : satisfied)
    if (pending.on_data) pending.on_data(data, now() - pending.sent_at);
}

void Consumer::receive_nack(const ndn::Nack& nack, FaceId) {
  ++nacks_received_;
  const auto map_it = pending_.find(nack.interest.name);
  if (map_it == pending_.end()) return;
  auto& list = map_it->second;
  // Prefer the exact nonce; fall back to the oldest pending for the name.
  auto it = std::find_if(list.begin(), list.end(), [&nack](const Pending& p) {
    return p.interest.nonce == nack.interest.nonce;
  });
  if (it == list.end()) it = list.begin();
  Pending rejected = std::move(*it);
  list.erase(it);
  if (list.empty()) pending_.erase(map_it);
  --pending_count_;
  if (rejected.on_nack) rejected.on_nack(nack);
}

// ---------------------------------------------------------------------------
// Producer

Producer::Producer(Scheduler& scheduler, std::string name, ndn::Name prefix,
                   std::string signing_key, ProducerConfig config, std::uint64_t seed)
    : Node(scheduler, std::move(name), seed),
      prefix_(std::move(prefix)),
      signing_key_(std::move(signing_key)),
      config_(config) {}

void Producer::publish(ndn::Data data) {
  ndn::Name key = data.name;
  repo_.insert_or_assign(std::move(key), std::move(data));
}

const ndn::Data* Producer::lookup_repo(const ndn::Interest& interest) const {
  // Exact match first, then the canonical smallest prefix-match.
  if (const auto it = repo_.find(interest.name);
      it != repo_.end() && it->second.satisfies(interest))
    return &it->second;
  for (auto it = repo_.lower_bound(interest.name); it != repo_.end(); ++it) {
    if (!interest.name.is_prefix_of(it->first)) break;
    if (it->second.satisfies(interest)) return &it->second;
  }
  return nullptr;
}

void Producer::receive_interest(const ndn::Interest& interest, FaceId in_face) {
  if (!prefix_.is_prefix_of(interest.name)) {
    ++interests_unmatched_;
    return;
  }

  ndn::Data response;
  if (const ndn::Data* found = lookup_repo(interest)) {
    response = *found;
  } else if (config_.auto_generate) {
    response = ndn::make_data(interest.name, std::string(config_.payload_size, 'x'), name(),
                              signing_key_, config_.mark_private);
    if (config_.group_namespace_len > 0)
      response.group_id = interest.name.prefix(config_.group_namespace_len).to_uri();
  } else {
    ++interests_unmatched_;
    return;
  }

  ++interests_served_;
  scheduler().schedule_in(config_.processing_delay,
                          [this, in_face, response] { send_data(in_face, response); });
}

void Producer::receive_data(const ndn::Data& data, FaceId) {
  util::log(util::LogLevel::kDebug, "%s: ignoring data %s", name().c_str(),
            data.name.to_uri().c_str());
}

}  // namespace ndnp::sim
