// Model-based chaos fuzzing for the forwarder stack.
//
// Two seeded, fully deterministic episode generators:
//
//  - run_chaos_episode(): builds a random consumer—forwarder-chain—producer
//    topology, turns on the fault engine (sim/faults.hpp) on every link,
//    schedules node faults (CS wipes, PIT squeezes) and a random interest
//    workload, runs the simulation to quiescence, then checks every
//    structural invariant (Forwarder::check_invariants). The episode digest
//    fingerprints the full end state so parallel sweeps can prove
//    byte-identical replay across --jobs counts.
//
//  - run_differential_episode(): drives a single Forwarder (zero
//    processing/link delay) with a random op stream — interests from two
//    downstream faces, Data/NACKs from upstream, hostile field values —
//    while a naive reference model (plain std::map PIT + LRU CS, the
//    spirit of tests/test_cs_differential.cpp) predicts every emitted
//    packet and every counter. Any divergence is reported with the op
//    index and a human-readable description.
//
// Both entry points use only the episode seed for randomness, so a failure
// reproduces from its seed alone (tools/chaos_tool replays one episode with
// full logging).
#pragma once

#include <cstdint>
#include <string>

#include "sim/faults.hpp"
#include "util/sim_time.hpp"

namespace ndnp::sim {

struct ChaosEpisodeOptions {
  std::uint64_t seed = 1;
  /// Interests the consumer expresses over the horizon.
  std::size_t interests = 400;
  /// Workload injection window; the episode then runs to quiescence.
  util::SimDuration horizon = util::millis(200);
};

struct ChaosEpisodeResult {
  /// FNV-1a fingerprint of the complete end state (all forwarder, cache,
  /// fault and application counters in a fixed order). Two runs of the
  /// same seed must produce the same digest, regardless of host
  /// parallelism.
  std::uint64_t digest = 0;
  /// Invariant violations detected during the episode (0 = clean).
  std::uint64_t invariant_violations = 0;
  /// First violation message ("" when clean).
  std::string violation;

  // Episode shape + outcome summary.
  std::size_t forwarders = 0;
  std::uint64_t interests_sent = 0;
  std::uint64_t data_received = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t consumer_nacks = 0;
  std::uint64_t events_processed = 0;
  util::SimTime end_time = 0;
  LinkFaultCounters link_faults;  // summed over every face of every node
  NodeFaultCounters node_faults;

  [[nodiscard]] bool ok() const noexcept {
    return invariant_violations == 0 && violation.empty();
  }
};

/// Run one seeded chaos episode. Never throws: invariant violations are
/// caught and reported in the result.
[[nodiscard]] ChaosEpisodeResult run_chaos_episode(const ChaosEpisodeOptions& options);

struct DifferentialResult {
  std::size_t ops = 0;
  std::size_t divergences = 0;
  /// Op index and description of the first divergence ("" when clean).
  std::string first_divergence;

  [[nodiscard]] bool ok() const noexcept { return divergences == 0; }
};

/// Run one seeded differential episode: `num_ops` random operations against
/// a real Forwarder, cross-checked op-by-op against the naive reference
/// model. Stops at the first divergence.
[[nodiscard]] DifferentialResult run_differential_episode(std::uint64_t seed,
                                                          std::size_t num_ops = 1500);

}  // namespace ndnp::sim
