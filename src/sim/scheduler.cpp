#include "sim/scheduler.hpp"

#include <stdexcept>
#include <utility>

#include "util/invariant.hpp"
#include "util/tracing.hpp"

namespace ndnp::sim {

void Scheduler::schedule_at(util::SimTime when, Event event) {
  if (when < now_) throw std::logic_error("Scheduler: cannot schedule in the past");
  if (!event) throw std::invalid_argument("Scheduler: null event");
  queue_.push(Item{when, next_seq_++, std::move(event)});
}

void Scheduler::schedule_in(util::SimDuration delay, Event event) {
  if (delay < 0) throw std::logic_error("Scheduler: negative delay");
  schedule_at(now_ + delay, std::move(event));
}

bool Scheduler::run_one() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, standard
  // practice given pop() immediately discards the slot.
  Item item = std::move(const_cast<Item&>(queue_.top()));
  queue_.pop();
  // Dispatch order is the determinism backbone: time never runs backwards,
  // and equal-time events run in schedule (seq) order.
  NDNP_INVARIANT_CHECK("scheduler", item.when >= now_,
                       "event at t=%lld dispatched after clock reached %lld",
                       static_cast<long long>(item.when), static_cast<long long>(now_));
  NDNP_INVARIANT_CHECK("scheduler", item.when > now_ || item.seq > last_seq_ || processed_ == 0,
                       "equal-time events dispatched out of schedule order (seq %llu after "
                       "%llu at t=%lld)",
                       static_cast<unsigned long long>(item.seq),
                       static_cast<unsigned long long>(last_seq_),
                       static_cast<long long>(item.when));
  now_ = item.when;
  last_seq_ = item.seq;
  ++processed_;
  {
    NDNP_TRACE_SCOPE("scheduler", "scheduler", "dispatch");
    item.event();
  }
  return true;
}

void Scheduler::run() {
  while (run_one()) {
  }
}

void Scheduler::run_until(util::SimTime until) {
  while (!queue_.empty() && queue_.top().when <= until) (void)run_one();
  if (now_ < until) now_ = until;
}

}  // namespace ndnp::sim
