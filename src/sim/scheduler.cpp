#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>

#include "util/invariant.hpp"
#include "util/tracing.hpp"

namespace ndnp::sim {

// ---------------------------------------------------------------------------
// WheelScheduler
//
// Invariant the wheel maintains: `cursor_tick_` is the highest tick whose
// level-0 slot has been drained, and no node anywhere in the wheel has a
// tick <= cursor_tick_. Events due at or before the cursor therefore go
// straight into the ready heap, whose (when, seq) ordering is the single
// source of dispatch order — slot lists are unsorted buckets.

WheelScheduler::~WheelScheduler() {
  for (const ReadyItem& item : ready_) slab_.destroy(item.node);
  ready_.clear();
  for (auto& level : slots_) {
    for (EventNode*& head : level) {
      for (EventNode* node = head; node != nullptr;) {
        EventNode* next = node->next;
        slab_.destroy(node);
        node = next;
      }
      head = nullptr;
    }
  }
}

std::uint64_t WheelScheduler::enqueue(util::SimTime when, EventFn fn, bool cancellable) {
  if (fn.heap_allocated()) ++heap_fallback_events_;
  EventNode* node = slab_.create(when, next_seq_++, cancellable, std::move(fn));
  if (cancellable) live_cancellable_.insert(node->seq);
  ++live_;
  place(node);
  return node->seq;
}

bool WheelScheduler::cancel(EventHandle handle) {
  // Lazy cancellation: drop the seq from the live set; the node itself is
  // reaped when it reaches the ready heap (or at destruction).
  if (live_cancellable_.erase(handle.seq) == 0) return false;
  --live_;
  return true;
}

void WheelScheduler::place(EventNode* node) {
  const std::uint64_t tick = tick_of(node->when);
  if (tick <= cursor_tick_) {
    ready_push(node);
    return;
  }
  const std::uint64_t delta = tick - cursor_tick_;
  int level = 0;
  while (level < kLevels - 1 &&
         delta >= (std::uint64_t{1} << (kLevelBits * (level + 1)))) {
    ++level;
  }
  const std::size_t idx =
      static_cast<std::size_t>(tick >> (kLevelBits * level)) & kSlotMask;
  node->next = slots_[level][idx];
  slots_[level][idx] = node;
  bitmap_[level][idx >> 6] |= std::uint64_t{1} << (idx & 63);
}

void WheelScheduler::ready_push(EventNode* node) {
  ready_.push_back(ReadyItem{node->when, node->seq, node});
  std::push_heap(ready_.begin(), ready_.end(), DispatchesAfter{});
}

void WheelScheduler::reap_ready_top() {
  std::pop_heap(ready_.begin(), ready_.end(), DispatchesAfter{});
  slab_.destroy(ready_.back().node);
  ready_.pop_back();
}

bool WheelScheduler::ensure_ready() {
  for (;;) {
    while (!ready_.empty()) {
      if (!is_cancelled(*ready_.front().node)) return true;
      reap_ready_top();
    }
    if (live_ == 0) return false;
    advance();
  }
}

int WheelScheduler::next_occupied(int level, std::size_t from) const noexcept {
  if (from >= kSlots) return -1;
  std::size_t word = from >> 6;
  std::uint64_t bits = bitmap_[level][word] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (bits != 0) return static_cast<int>(word * 64 + std::countr_zero(bits));
    if (++word == kBitmapWords) return -1;
    bits = bitmap_[level][word];
  }
}

void WheelScheduler::advance() {
  // Precondition: ready_ is empty and at least one node sits in the wheel.
  // Jump the cursor straight to the earliest due slot across all levels —
  // no per-tick stepping, so sparse far-future events cost one bitmap scan
  // per level per cascade instead of millions of empty ticks.
  for (;;) {
    std::uint64_t best_due = ~std::uint64_t{0};
    int best_level = -1;
    std::size_t best_idx = 0;
    for (int level = 0; level < kLevels; ++level) {
      const int shift = kLevelBits * level;
      const std::size_t here =
          static_cast<std::size_t>(cursor_tick_ >> shift) & kSlotMask;
      const std::uint64_t revolution = std::uint64_t{1} << (shift + kLevelBits);
      const std::uint64_t base = cursor_tick_ & ~(revolution - 1);
      // Slot `here` itself must be scanned when the cursor sits exactly on
      // this level's slot boundary: a cascade tie can land the cursor on a
      // range base while lower levels still hold slots due at that very
      // tick (idx == here), and skipping them would defer their events a
      // full revolution. The alignment condition is what makes inclusion
      // safe — an aligned cursor provably cannot coexist with
      // next-revolution occupants of slot `here` (their placement would
      // have required a delta beyond this level's capacity).
      const bool aligned = (cursor_tick_ & ((std::uint64_t{1} << shift) - 1)) == 0;
      std::uint64_t due = 0;
      int idx = next_occupied(level, aligned ? here : here + 1);
      if (idx >= 0) {
        due = base + (static_cast<std::uint64_t>(idx) << shift);
      } else {
        idx = next_occupied(level, 0);
        if (idx < 0) continue;
        due = base + revolution + (static_cast<std::uint64_t>(idx) << shift);
      }
      // Ties go to the HIGHEST level: a higher-level slot due at tick T
      // must cascade before level 0's slot at T is dumped, or its
      // same-tick events would dispatch late (a full revolution later).
      if (due <= best_due) {
        best_due = due;
        best_level = level;
        best_idx = static_cast<std::size_t>(idx);
      }
    }
    if (best_level < 0) {
      // Cascades re-placed everything straight into the ready heap (their
      // ticks equalled the advanced cursor) and the wheel is empty.
      NDNP_INVARIANT_CHECK("scheduler", !ready_.empty(),
                           "advance() found no occupied slot with %zu live events", live_);
      return;
    }
    if (!ready_.empty() && best_due > cursor_tick_) {
      // Every slot due at the cursor tick has been flushed; anything left
      // in the wheel is due strictly later, so ready-heap dispatch order
      // is complete for this tick.
      return;
    }
    cursor_tick_ = best_due;
    if (best_level == 0) {
      // Tie-breaking guarantees no other level shares this due tick by
      // now, so the dump completes the advance.
      dump_slot(best_idx);
      return;
    }
    cascade(best_level, best_idx);
  }
}

void WheelScheduler::cascade(int level, std::size_t idx) {
  EventNode* node = slots_[level][idx];
  slots_[level][idx] = nullptr;
  bitmap_[level][idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  ++cascades_;
  while (node != nullptr) {
    EventNode* next = node->next;
    node->next = nullptr;
    place(node);  // re-place relative to the advanced cursor
    node = next;
  }
}

void WheelScheduler::dump_slot(std::size_t idx) {
  EventNode* node = slots_[0][idx];
  slots_[0][idx] = nullptr;
  bitmap_[0][idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  while (node != nullptr) {
    EventNode* next = node->next;
    NDNP_INVARIANT_CHECK("scheduler", tick_of(node->when) == cursor_tick_,
                         "level-0 slot %zu dumped an event for tick %llu at cursor %llu",
                         idx, static_cast<unsigned long long>(tick_of(node->when)),
                         static_cast<unsigned long long>(cursor_tick_));
    node->next = nullptr;
    ready_push(node);
    node = next;
  }
}

void WheelScheduler::dispatch_front() {
  std::pop_heap(ready_.begin(), ready_.end(), DispatchesAfter{});
  const ReadyItem item = ready_.back();
  ready_.pop_back();
  EventNode* node = item.node;
  // Dispatch order is the determinism backbone: time never runs backwards,
  // and equal-time events run in schedule (seq) order.
  NDNP_INVARIANT_CHECK("scheduler", item.when >= now_,
                       "event at t=%lld dispatched after clock reached %lld",
                       static_cast<long long>(item.when), static_cast<long long>(now_));
  NDNP_INVARIANT_CHECK("scheduler", item.when > now_ || item.seq > last_seq_ || processed_ == 0,
                       "equal-time events dispatched out of schedule order (seq %llu after "
                       "%llu at t=%lld)",
                       static_cast<unsigned long long>(item.seq),
                       static_cast<unsigned long long>(last_seq_),
                       static_cast<long long>(item.when));
  now_ = item.when;
  last_seq_ = item.seq;
  ++processed_;
  --live_;
  if (node->cancellable) live_cancellable_.erase(node->seq);
  // Move the callable out and recycle the node BEFORE invoking: the event
  // may schedule new work (reusing this very node) or throw, and either
  // way the slab stays consistent.
  EventFn fn = std::move(node->fn);
  slab_.destroy(node);
  {
    NDNP_TRACE_SCOPE("scheduler", "scheduler", "dispatch");
    fn();
  }
}

bool WheelScheduler::run_one() {
  if (!ensure_ready()) return false;
  dispatch_front();
  return true;
}

void WheelScheduler::run() {
  while (run_one()) {
  }
}

void WheelScheduler::run_until(util::SimTime until) {
  while (ensure_ready() && ready_.front().when <= until) dispatch_front();
  if (now_ < until) now_ = until;
}

// ---------------------------------------------------------------------------
// HeapScheduler (reference implementation)

std::uint64_t HeapScheduler::enqueue(util::SimTime when, EventFn fn, bool cancellable) {
  const std::uint64_t seq = next_seq_++;
  if (cancellable) live_cancellable_.insert(seq);
  queue_.push(Item{when, seq, cancellable, std::move(fn)});
  ++live_;
  return seq;
}

bool HeapScheduler::cancel(EventHandle handle) {
  if (live_cancellable_.erase(handle.seq) == 0) return false;
  --live_;
  return true;
}

void HeapScheduler::reap_cancelled_top() {
  while (!queue_.empty()) {
    const Item& top = queue_.top();
    if (!top.cancellable || live_cancellable_.find(top.seq) != live_cancellable_.end()) {
      return;
    }
    queue_.pop();
  }
}

bool HeapScheduler::run_one() {
  reap_cancelled_top();
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, standard
  // practice given pop() immediately discards the slot.
  Item item = std::move(const_cast<Item&>(queue_.top()));
  queue_.pop();
  NDNP_INVARIANT_CHECK("scheduler", item.when >= now_,
                       "event at t=%lld dispatched after clock reached %lld",
                       static_cast<long long>(item.when), static_cast<long long>(now_));
  NDNP_INVARIANT_CHECK("scheduler", item.when > now_ || item.seq > last_seq_ || processed_ == 0,
                       "equal-time events dispatched out of schedule order (seq %llu after "
                       "%llu at t=%lld)",
                       static_cast<unsigned long long>(item.seq),
                       static_cast<unsigned long long>(last_seq_),
                       static_cast<long long>(item.when));
  now_ = item.when;
  last_seq_ = item.seq;
  ++processed_;
  --live_;
  if (item.cancellable) live_cancellable_.erase(item.seq);
  {
    NDNP_TRACE_SCOPE("scheduler", "scheduler", "dispatch");
    item.fn();
  }
  return true;
}

void HeapScheduler::run() {
  while (run_one()) {
  }
}

void HeapScheduler::run_until(util::SimTime until) {
  for (;;) {
    reap_cancelled_top();
    if (queue_.empty() || queue_.top().when > until) break;
    (void)run_one();
  }
  if (now_ < until) now_ = until;
}

}  // namespace ndnp::sim
