// Topology construction and the canned experiment scenarios of Section III.
//
// `Topology` owns a scheduler plus all nodes and wires them with links.
// The four probe scenarios mirror the paper's Figure 3 settings:
//  (a) LAN        — U and Adv on Fast-Ethernet links to first-hop router R,
//                   producer P two WAN hops past R;
//  (b) WAN        — U and Adv several (IP) hops from R, modelled as one
//                   aggregate high-latency/jitter link; P three NDN hops
//                   past R;
//  (c) WAN, producer privacy — P directly attached to R; U and Adv far
//                   away, so path jitter nearly drowns the R<->P delta;
//  (d) local host — honest and malicious applications sharing one node's
//                   local cache (the "ccnd" daemon) over IPC links.
//
// Note on "several hops away": the paper's U/Adv connect to R through
// plain IP hops (no caches in between), so those are modelled as a single
// link whose latency/jitter aggregates the hops. Hops past R are real NDN
// forwarders with caches.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/policy.hpp"
#include "sim/apps.hpp"
#include "sim/forwarder.hpp"

namespace ndnp::sim {

/// Owns the scheduler and every node of one simulated network.
class Topology {
 public:
  explicit Topology(std::uint64_t seed) : seed_(seed) {}

  [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }

  Forwarder& add_router(std::string name, ForwarderConfig config,
                        std::unique_ptr<core::CachePrivacyPolicy> policy = nullptr);
  Consumer& add_consumer(std::string name);
  Producer& add_producer(std::string name, ndn::Name prefix, ProducerConfig config);

  /// Wire two owned nodes; returns (face on a, face on b).
  std::pair<FaceId, FaceId> link(Node& a, Node& b, const LinkConfig& config) {
    return connect(a, b, config);
  }

 private:
  [[nodiscard]] std::uint64_t next_seed() noexcept;

  Scheduler scheduler_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::uint64_t seed_;
  std::uint64_t node_counter_ = 0;
};

/// A cache-probing experiment scenario: honest user U, adversary Adv, the
/// shared first-hop router R, a chain of core routers, and producer P.
/// All raw pointers are owned by `topology`.
struct ProbeScenario {
  Topology topology;
  Consumer* user = nullptr;
  Consumer* adversary = nullptr;
  Forwarder* router = nullptr;               // R: the probed first-hop cache
  std::vector<Forwarder*> core;              // routers between R and P (may be empty)
  Producer* producer = nullptr;

  explicit ProbeScenario(std::uint64_t seed) : topology(seed) {}
};

struct ScenarioParams {
  /// U <-> R and Adv <-> R access link.
  LinkConfig access_link;
  /// Per-hop link along R -> ... -> P.
  LinkConfig core_link;
  /// Number of links between R and P (1 = P directly attached to R).
  std::size_t core_hops = 2;
  ForwarderConfig router_config;
  ProducerConfig producer_config;
  /// Privacy policy installed at R; null = NoPrivacy.
  std::function<std::unique_ptr<core::CachePrivacyPolicy>()> router_policy;
  /// Privacy policy for the core routers between R and P; null = NoPrivacy.
  /// Deployment caveat demonstrated by examples/timing_attack_demo: a
  /// simulated-miss scheme at R alone leaks through the unprotected
  /// next-hop cache (the "miss" returns at neighbor-cache speed).
  std::function<std::unique_ptr<core::CachePrivacyPolicy>()> core_router_policy;
  /// Producer namespace.
  ndn::Name producer_prefix = ndn::Name("/producer");
  std::uint64_t seed = 1;
};

/// Generic builder used by all four canned scenarios.
[[nodiscard]] std::unique_ptr<ProbeScenario> make_probe_scenario(const ScenarioParams& params);

/// Figure 3(a): LAN. Fast-Ethernet access, P two WAN hops past R.
[[nodiscard]] ScenarioParams lan_scenario_params(std::uint64_t seed);

/// Figure 3(b): WAN. Aggregate multi-hop access links, P three hops past R.
[[nodiscard]] ScenarioParams wan_scenario_params(std::uint64_t seed);

/// Figure 3(c): WAN producer privacy. P adjacent to R, consumers far away.
[[nodiscard]] ScenarioParams producer_adjacent_scenario_params(std::uint64_t seed);

/// Figure 3(d): local host. The "router" is the node-local daemon; user and
/// adversary are applications on the same machine; P one WAN hop away.
[[nodiscard]] ScenarioParams local_host_scenario_params(std::uint64_t seed);

}  // namespace ndnp::sim
