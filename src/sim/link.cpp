#include "sim/link.hpp"

#include <algorithm>
#include <cmath>

namespace ndnp::sim {

util::SimDuration LinkConfig::sample_delay(util::Rng& rng, std::size_t wire_bytes) const {
  double total = static_cast<double>(latency);
  if (bandwidth_bps > 0.0)
    total += static_cast<double>(wire_bytes) * 8.0 / bandwidth_bps * 1e9;
  switch (jitter) {
    case JitterKind::kNone:
      break;
    case JitterKind::kUniform:
      total += rng.uniform(jitter_a, jitter_b);
      break;
    case JitterKind::kTruncNormal:
      total += std::max(0.0, rng.normal(jitter_a, jitter_b));
      break;
    case JitterKind::kLognormal:
      // exp(N(ln a, b)) has median a; sigma = b controls the tail.
      if (jitter_a > 0.0) total += rng.lognormal(std::log(jitter_a), jitter_b);
      break;
  }
  return std::max<util::SimDuration>(0, static_cast<util::SimDuration>(total));
}

bool LinkConfig::sample_loss(util::Rng& rng) const {
  return loss_probability > 0.0 && rng.bernoulli(loss_probability);
}

LinkConfig lan_link(double latency_ms, double jitter_ms) {
  LinkConfig cfg;
  cfg.latency = util::millis_f(latency_ms);
  cfg.jitter = JitterKind::kUniform;
  cfg.jitter_a = 0.0;
  cfg.jitter_b = static_cast<double>(util::millis_f(jitter_ms));
  return cfg;
}

LinkConfig wan_link(double latency_ms, double jitter_median_ms, double jitter_sigma) {
  LinkConfig cfg;
  cfg.latency = util::millis_f(latency_ms);
  cfg.jitter = JitterKind::kLognormal;
  cfg.jitter_a = static_cast<double>(util::millis_f(jitter_median_ms));
  cfg.jitter_b = jitter_sigma;
  return cfg;
}

LinkConfig local_ipc_link(double latency_ms, double jitter_ms) {
  LinkConfig cfg;
  cfg.latency = util::millis_f(latency_ms);
  cfg.jitter = JitterKind::kUniform;
  cfg.jitter_a = 0.0;
  cfg.jitter_b = static_cast<double>(util::millis_f(jitter_ms));
  return cfg;
}

}  // namespace ndnp::sim
