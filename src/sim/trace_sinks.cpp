#include "sim/trace_sinks.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ndnp::sim {

namespace {

/// JSON string escaping: quotes, backslashes and control characters (the
/// latter as \u00XX so every emitted line is strict JSON).
void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

[[nodiscard]] std::string json_string(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_json_escaped(out, s);
  out += '"';
  return out;
}

/// Simulation nanoseconds -> Chrome trace microseconds ("%.3f" keeps full
/// nanosecond precision in the decimals).
[[nodiscard]] std::string micros_str(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1000.0);
  return buf;
}

}  // namespace

std::vector<FlatEvent> flatten(const util::Tracer& tracer) {
  std::vector<FlatEvent> out;
  const std::vector<util::TraceEvent> events = tracer.events();
  out.reserve(events.size());
  for (const util::TraceEvent& ev : events) {
    FlatEvent flat;
    flat.t = ev.time;
    flat.type = std::string(to_string(ev.type));
    flat.node = tracer.label(ev.node);
    flat.comp = tracer.label(ev.comp);
    flat.name = ev.name;
    flat.detail = ev.detail;
    flat.face = ev.face;
    flat.a = ev.a;
    flat.b = ev.b;
    out.push_back(std::move(flat));
  }
  return out;
}

std::string detail_field(const std::string& detail, const std::string& key) {
  const std::string token = key + "=";
  std::size_t pos = 0;
  while (pos < detail.size()) {
    // Only match at the start of the string or after a separating space.
    const std::size_t found = detail.find(token, pos);
    if (found == std::string::npos) return {};
    if (found == 0 || detail[found - 1] == ' ') {
      const std::size_t start = found + token.size();
      const std::size_t end = detail.find(' ', start);
      return detail.substr(start, end == std::string::npos ? std::string::npos : end - start);
    }
    pos = found + 1;
  }
  return {};
}

void write_trace_jsonl(const std::vector<FlatEvent>& events, std::ostream& out) {
  std::string line;
  for (const FlatEvent& ev : events) {
    line.clear();
    line += "{\"t\":";
    line += std::to_string(ev.t);
    line += ",\"type\":";
    line += json_string(ev.type);
    line += ",\"node\":";
    line += json_string(ev.node);
    line += ",\"comp\":";
    line += json_string(ev.comp);
    line += ",\"face\":";
    line += std::to_string(ev.face);
    line += ",\"name\":";
    line += json_string(ev.name);
    line += ",\"detail\":";
    line += json_string(ev.detail);
    line += ",\"a\":";
    line += std::to_string(ev.a);
    line += ",\"b\":";
    line += std::to_string(ev.b);
    line += "}\n";
    out << line;
  }
}

void write_chrome_trace(const std::vector<FlatEvent>& events, std::ostream& out) {
  // pid/tid by first appearance; Perfetto shows them sorted by the "M"
  // metadata names, so ids only need to be stable, not meaningful.
  std::map<std::string, int> pids;
  std::map<std::pair<int, std::string>, int> tids;
  const auto pid_of = [&pids](const std::string& node) {
    const auto [it, inserted] = pids.emplace(node, static_cast<int>(pids.size()) + 1);
    (void)inserted;
    return it->second;
  };
  const auto tid_of = [&tids](int pid, const std::string& comp) {
    const auto [it, inserted] =
        tids.emplace(std::pair{pid, comp}, static_cast<int>(tids.size()) + 1);
    (void)inserted;
    return it->second;
  };

  // First pass assigns ids in event order (deterministic).
  for (const FlatEvent& ev : events) tid_of(pid_of(ev.node), ev.comp);

  out << "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&out, &first](const std::string& obj) {
    if (!first) out << ",";
    out << "\n" << obj;
    first = false;
  };

  for (const auto& [node, pid] : pids) {
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"args\":{\"name\":" + json_string(node) + "}}");
  }
  for (const auto& [key, tid] : tids) {
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + std::to_string(key.first) +
         ",\"tid\":" + std::to_string(tid) +
         ",\"args\":{\"name\":" + json_string(key.second) + "}}");
  }

  for (const FlatEvent& ev : events) {
    const int pid = pid_of(ev.node);
    const int tid = tid_of(pid, ev.comp);
    std::string obj = "{\"name\":";
    if (ev.type == "span") {
      // Wall-clock profiling span: sim-time anchored, wall-clock sized.
      obj += json_string(ev.name);
      obj += ",\"ph\":\"X\",\"ts\":";
      obj += micros_str(ev.t);
      obj += ",\"dur\":";
      obj += micros_str(ev.a);
    } else {
      obj += json_string(ev.name.empty() ? ev.type : ev.type + " " + ev.name);
      obj += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      obj += micros_str(ev.t);
    }
    obj += ",\"pid\":";
    obj += std::to_string(pid);
    obj += ",\"tid\":";
    obj += std::to_string(tid);
    obj += ",\"args\":{\"type\":";
    obj += json_string(ev.type);
    obj += ",\"name\":";
    obj += json_string(ev.name);
    obj += ",\"detail\":";
    obj += json_string(ev.detail);
    obj += ",\"face\":";
    obj += std::to_string(ev.face);
    obj += ",\"a\":";
    obj += std::to_string(ev.a);
    obj += ",\"b\":";
    obj += std::to_string(ev.b);
    obj += "}}";
    emit(obj);
  }
  out << "\n]}\n";
}

void write_trace_file(const util::Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_trace_file: cannot open " + path);
  const std::vector<FlatEvent> events = flatten(tracer);
  const bool jsonl = path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  if (jsonl)
    write_trace_jsonl(events, out);
  else
    write_chrome_trace(events, out);
  out.flush();
  if (!out) throw std::runtime_error("write_trace_file: write failed for " + path);
}

// ---------------------------------------------------------------------------
// JSONL parsing (the exact flat schema write_trace_jsonl emits).

namespace {

struct Cursor {
  const std::string& line;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("parse_trace_jsonl: " + what + " at column " +
                             std::to_string(pos) + " in: " + line);
  }
  void skip_ws() {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  }
  [[nodiscard]] char peek() const { return pos < line.size() ? line[pos] : '\0'; }
  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < line.size() && line[pos] != '"') {
      char c = line[pos++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= line.size()) fail("dangling escape");
      const char esc = line[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > line.size()) fail("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = line[pos++];
            value <<= 4;
            if (h >= '0' && h <= '9')
              value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              value |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          if (value < 0x80) {
            out += static_cast<char>(value);
          } else {  // 2-byte UTF-8 covers everything we ever emit
            out += static_cast<char>(0xC0 | (value >> 6));
            out += static_cast<char>(0x80 | (value & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
    if (pos >= line.size()) fail("unterminated string");
    ++pos;  // closing quote
    return out;
  }
  [[nodiscard]] std::int64_t parse_int() {
    skip_ws();
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') ++pos;
    if (pos == start || (pos == start + 1 && line[start] == '-')) fail("expected integer");
    return std::stoll(line.substr(start, pos - start));
  }
};

}  // namespace

std::vector<FlatEvent> parse_trace_jsonl(std::istream& in) {
  std::vector<FlatEvent> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Cursor cur{line};
    cur.expect('{');
    FlatEvent ev;
    cur.skip_ws();
    if (cur.peek() != '}') {
      while (true) {
        const std::string key = cur.parse_string();
        cur.expect(':');
        cur.skip_ws();
        if (key == "t")
          ev.t = cur.parse_int();
        else if (key == "type")
          ev.type = cur.parse_string();
        else if (key == "node")
          ev.node = cur.parse_string();
        else if (key == "comp")
          ev.comp = cur.parse_string();
        else if (key == "name")
          ev.name = cur.parse_string();
        else if (key == "detail")
          ev.detail = cur.parse_string();
        else if (key == "face")
          ev.face = cur.parse_int();
        else if (key == "a")
          ev.a = cur.parse_int();
        else if (key == "b")
          ev.b = cur.parse_int();
        else if (cur.peek() == '"')  // unknown key: skip its value
          (void)cur.parse_string();
        else
          (void)cur.parse_int();
        cur.skip_ws();
        if (cur.peek() == ',') {
          ++cur.pos;
          continue;
        }
        break;
      }
    }
    cur.expect('}');
    out.push_back(std::move(ev));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Attack forensics.

std::string_view to_string(ProbeVerdict verdict) noexcept {
  switch (verdict) {
    case ProbeVerdict::kTrueHit: return "TrueHit";
    case ProbeVerdict::kDelayedHit: return "DelayedHit";
    case ProbeVerdict::kSimulatedMiss: return "SimulatedMiss";
    case ProbeVerdict::kTrueMiss: return "TrueMiss";
    case ProbeVerdict::kUnknown: return "Unknown";
  }
  return "?";
}

ForensicsReport probe_forensics(const std::vector<FlatEvent>& events) {
  // Per-name indexes over the two ground-truth streams. Events arrive in
  // recording order, so each bucket is already sorted by time.
  std::map<std::string, std::vector<const FlatEvent*>> lookups;
  std::map<std::string, std::vector<const FlatEvent*>> decisions;
  // Fault attribution: link faults are keyed by the packet name they hit;
  // node faults (empty name: CS wipe, PIT squeeze) affect every name.
  std::map<std::string, std::vector<const FlatEvent*>> faults;
  std::vector<const FlatEvent*> node_faults;
  std::size_t fault_events = 0;
  for (const FlatEvent& ev : events) {
    if (ev.type == "cs_lookup") {
      lookups[ev.name].push_back(&ev);
    } else if (ev.type == "policy_decision") {
      decisions[ev.name].push_back(&ev);
    } else if (ev.type == "fault_inject") {
      ++fault_events;
      (ev.name.empty() ? node_faults : faults[ev.name]).push_back(&ev);
    }
  }

  const auto first_at_or_after = [](const std::vector<const FlatEvent*>& bucket,
                                    util::SimTime when) {
    return std::lower_bound(bucket.begin(), bucket.end(), when,
                            [](const FlatEvent* ev, util::SimTime t) { return ev->t < t; });
  };

  ForensicsReport report;
  report.fault_events = fault_events;

  const auto attribute_faults = [&](ProbeForensics& probe, util::SimTime window_start) {
    std::vector<std::string> causes;
    const auto scan = [&](const std::vector<const FlatEvent*>& bucket) {
      for (auto it = first_at_or_after(bucket, window_start);
           it != bucket.end() && (*it)->t <= probe.probe_time; ++it) {
        ++probe.faults;
        std::string cause = detail_field((*it)->detail, "cause");
        if (cause.empty()) cause = detail_field((*it)->detail, "fault");
        if (!cause.empty() &&
            std::find(causes.begin(), causes.end(), cause) == causes.end())
          causes.push_back(cause);
      }
    };
    if (const auto fit = faults.find(probe.name); fit != faults.end()) scan(fit->second);
    scan(node_faults);
    for (const std::string& cause : causes) {
      if (!probe.fault_causes.empty()) probe.fault_causes += ',';
      probe.fault_causes += cause;
    }
  };

  for (const FlatEvent& ev : events) {
    if (ev.type != "attack_probe") continue;
    ProbeForensics probe;
    probe.probe_time = ev.t;
    probe.name = ev.name;
    probe.truth = detail_field(ev.detail, "truth");
    probe.rtt = ev.a;
    probe.round = ev.b;

    // The probe completed at ev.t after a measured RTT of ev.a ns: the
    // cache lookup it triggered lies inside [t - rtt, t]. The first one in
    // the window is the first-hop router's — the one whose answer shaped
    // the RTT the adversary measured.
    const auto lit = lookups.find(ev.name);
    const FlatEvent* lookup = nullptr;
    if (lit != lookups.end()) {
      const auto it = first_at_or_after(lit->second, ev.t - ev.a);
      if (it != lit->second.end() && (*it)->t <= ev.t) lookup = *it;
    }

    if (lookup == nullptr) {
      probe.verdict = ProbeVerdict::kUnknown;
    } else if (detail_field(lookup->detail, "result") != "hit") {
      probe.verdict = ProbeVerdict::kTrueMiss;
      probe.decided_by = lookup->node;
    } else {
      probe.decided_by = lookup->node;
      // Cached: the policy decision at the same router tells us what the
      // adversary was actually shown.
      probe.verdict = ProbeVerdict::kTrueHit;
      const auto dit = decisions.find(ev.name);
      if (dit != decisions.end()) {
        const auto it = first_at_or_after(dit->second, lookup->t);
        if (it != dit->second.end() && (*it)->t <= ev.t && (*it)->node == lookup->node) {
          const std::string action = detail_field((*it)->detail, "action");
          if (action == "DelayedHit")
            probe.verdict = ProbeVerdict::kDelayedHit;
          else if (action == "SimulatedMiss")
            probe.verdict = ProbeVerdict::kSimulatedMiss;
        }
      }
    }

    const bool cached = probe.verdict == ProbeVerdict::kTrueHit ||
                        probe.verdict == ProbeVerdict::kDelayedHit ||
                        probe.verdict == ProbeVerdict::kSimulatedMiss;
    probe.agrees = probe.verdict != ProbeVerdict::kUnknown && !probe.truth.empty() &&
                   (probe.truth == "hit") == cached;

    switch (probe.verdict) {
      case ProbeVerdict::kTrueHit: ++report.true_hits; break;
      case ProbeVerdict::kDelayedHit: ++report.delayed_hits; break;
      case ProbeVerdict::kSimulatedMiss: ++report.simulated_misses; break;
      case ProbeVerdict::kTrueMiss: ++report.true_misses; break;
      case ProbeVerdict::kUnknown: ++report.unknown; break;
    }
    if (probe.agrees) ++report.agreements;
    attribute_faults(probe, ev.t - ev.a);
    if (probe.faults > 0) ++report.faulted_probes;
    report.probes.push_back(std::move(probe));
  }
  return report;
}

std::string ForensicsReport::format_table() const {
  // The faults column (and the fault summary fields) appear only when the
  // capture holds fault_inject events — clean-run output is unchanged.
  const bool with_faults = fault_events > 0;
  std::ostringstream out;
  out << "round  t_ms        rtt_ms   truth  verdict        by      agree";
  if (with_faults) out << "  faults";
  out << "  name\n";
  char row[320];
  for (const ProbeForensics& probe : probes) {
    std::snprintf(row, sizeof row, "%-6lld %-11.3f %-8.3f %-6s %-14s %-7s %-6s",
                  static_cast<long long>(probe.round),
                  static_cast<double>(probe.probe_time) / 1e6,
                  static_cast<double>(probe.rtt) / 1e6, probe.truth.c_str(),
                  std::string(to_string(probe.verdict)).c_str(), probe.decided_by.c_str(),
                  probe.agrees ? "yes" : "no");
    out << row;
    if (with_faults) {
      const std::string cell =
          probe.faults == 0
              ? std::string("-")
              : std::to_string(probe.faults) +
                    (probe.fault_causes.empty() ? "" : ":" + probe.fault_causes);
      std::snprintf(row, sizeof row, " %-7s", cell.c_str());
      out << row;
    }
    out << ' ' << probe.name << '\n';
  }
  char summary[320];
  std::snprintf(summary, sizeof summary,
                "probes=%zu true_hit=%zu delayed_hit=%zu simulated_miss=%zu true_miss=%zu "
                "unknown=%zu agreement=%.4f",
                probes.size(), true_hits, delayed_hits, simulated_misses, true_misses,
                unknown, agreement_rate());
  out << summary;
  if (with_faults) {
    std::snprintf(summary, sizeof summary, " fault_events=%zu faulted_probes=%zu",
                  fault_events, faulted_probes);
    out << summary;
  }
  out << '\n';
  return out.str();
}

TelemetryScorecard telemetry_scorecard(const std::vector<FlatEvent>& events,
                                       util::SimDuration width) {
  if (width <= 0)
    throw std::invalid_argument("telemetry_scorecard: window width must be positive");

  TelemetryScorecard card;
  card.window = width;
  const std::size_t kinds = telemetry::kDetectorKinds;
  card.detectors.resize(kinds + 1);
  for (std::size_t k = 0; k < kinds; ++k)
    card.detectors[k].detector =
        std::string(telemetry::to_string(static_cast<telemetry::DetectorKind>(k)));
  card.detectors[kinds].detector = "any";
  if (events.empty()) return card;

  util::SimTime t_max = 0;
  for (const FlatEvent& ev : events) t_max = std::max(t_max, ev.t);
  card.total_windows = static_cast<std::size_t>(t_max / width) + 1;
  const auto window_of = [width](util::SimTime t) {
    return static_cast<std::size_t>(t / width);
  };

  // Pass 1: window occupancy. attack[w] = probe activity; alarmed[k][w] per
  // detector, slot `kinds` = any detector.
  std::vector<char> attack(card.total_windows, 0);
  std::vector<std::vector<char>> alarmed(kinds + 1,
                                         std::vector<char>(card.total_windows, 0));
  util::SimTime first_probe = util::kTimeUnset;
  std::vector<util::SimTime> first_alarm_after(kinds + 1, util::kTimeUnset);
  for (const FlatEvent& ev : events) {
    if (ev.type == "attack_probe") {
      ++card.probes;
      attack[window_of(ev.t)] = 1;
      if (first_probe == util::kTimeUnset) first_probe = ev.t;
    }
  }
  for (const FlatEvent& ev : events) {
    if (ev.type != "telemetry_alarm") continue;
    ++card.alarms;
    const std::string name = detail_field(ev.detail, "detector");
    std::size_t kind = kinds;  // unknown detector names only count as "any"
    for (std::size_t k = 0; k < kinds; ++k)
      if (name == card.detectors[k].detector) kind = k;
    const std::size_t w = window_of(ev.t);
    if (kind < kinds) {
      ++card.detectors[kind].alarms;
      alarmed[kind][w] = 1;
      if (first_probe != util::kTimeUnset && ev.t >= first_probe &&
          first_alarm_after[kind] == util::kTimeUnset)
        first_alarm_after[kind] = ev.t;
    }
    ++card.detectors[kinds].alarms;
    alarmed[kinds][w] = 1;
    if (first_probe != util::kTimeUnset && ev.t >= first_probe &&
        first_alarm_after[kinds] == util::kTimeUnset)
      first_alarm_after[kinds] = ev.t;
  }

  for (std::size_t w = 0; w < card.total_windows; ++w)
    if (attack[w]) ++card.attack_windows;

  // Pass 2: per-detector precision/recall over windows.
  for (std::size_t k = 0; k <= kinds; ++k) {
    DetectorScore& score = card.detectors[k];
    for (std::size_t w = 0; w < card.total_windows; ++w) {
      if (!alarmed[k][w]) continue;
      ++score.alarmed_windows;
      if (attack[w])
        ++score.true_positive_windows;
      else
        ++score.false_positive_windows;
    }
    score.precision = score.alarmed_windows == 0
                          ? 1.0
                          : static_cast<double>(score.true_positive_windows) /
                                static_cast<double>(score.alarmed_windows);
    score.recall = card.attack_windows == 0
                       ? 0.0
                       : static_cast<double>(score.true_positive_windows) /
                             static_cast<double>(card.attack_windows);
    if (first_alarm_after[k] != util::kTimeUnset)
      score.detection_latency_ms = util::to_millis(first_alarm_after[k] - first_probe);
  }
  return card;
}

std::string TelemetryScorecard::format_table() const {
  std::ostringstream out;
  out << "detector            alarms  windows  tp      fp      precision  recall  latency_ms\n";
  char row[200];
  for (const DetectorScore& score : detectors) {
    std::snprintf(row, sizeof row, "%-19s %-7zu %-8zu %-7zu %-7zu %-10.4f %-7.4f ",
                  score.detector.c_str(), score.alarms, score.alarmed_windows,
                  score.true_positive_windows, score.false_positive_windows, score.precision,
                  score.recall);
    out << row;
    if (score.detection_latency_ms < 0.0)
      out << "-\n";
    else {
      std::snprintf(row, sizeof row, "%.3f\n", score.detection_latency_ms);
      out << row;
    }
  }
  std::snprintf(row, sizeof row,
                "windows=%zu attack_windows=%zu probes=%zu alarms=%zu window_ms=%.3f\n",
                total_windows, attack_windows, probes, alarms, util::to_millis(window));
  out << row;
  return out.str();
}

}  // namespace ndnp::sim
