// Deterministic, seeded fault-injection engine.
//
// The paper's attacks and countermeasures are evaluated in sim/ under
// benign network conditions; this module supplies the misbehaving network.
// Two fault layers, both driven exclusively by util::Rng streams derived
// from explicit seeds, so any fault sequence replays bit-identically from
// its seed (and identically for any --jobs value — each run owns its
// streams):
//
//  - Per-link faults (LinkFaultConfig, attached to sim::LinkConfig): a
//    Gilbert–Elliott burst-loss chain, packet duplication, on-the-wire
//    corruption (encode -> seeded bit flips -> decode; undecodable packets
//    are dropped as garbage, decodable ones are delivered corrupted —
//    exercising exactly the TLV robustness contract), reorder windows and
//    latency spikes (extra delay that legally reorders packets behind
//    later sends), and periodic link flaps (hard down-windows). Each link
//    *direction* owns an independent chain + RNG stream: direction 0/1 of
//    seed s draw from SplitMix64(s) outputs 1/2.
//
//  - Per-node faults (NodeFaultEvent schedules, run against a Forwarder):
//    CS wipe/restart (the cache loses all state mid-run) and PIT-capacity
//    squeezes (the table shrinks under the feet of in-flight interests).
//
// Every injected fault bumps a counter (surfaced through util::MetricsRegistry)
// and records a kFaultInject trace event, so probe_forensics and the chaos
// harness can attribute anomalous verdicts to the faults that caused them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ndn/packet.hpp"
#include "util/fault_model.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace ndnp::util {
class MetricsRegistry;
}

namespace ndnp::sim {

class Forwarder;

struct LinkFaultConfig {
  /// Burst loss (Gilbert–Elliott). Disabled when p_enter_bad and loss_good
  /// are both zero.
  util::GilbertElliottConfig burst_loss{};
  /// Per-packet probability of transmitting a second, independently
  /// delayed copy (the PIT/nonce dedup paths must absorb it).
  double duplicate_probability = 0.0;
  /// Per-packet probability of corrupting the wire encoding with 1..
  /// corrupt_max_bit_flips bit flips before delivery.
  double corrupt_probability = 0.0;
  int corrupt_max_bit_flips = 3;
  /// Per-packet probability of holding the packet back by a uniform extra
  /// delay in (0, reorder_window] — later packets overtake it.
  double reorder_probability = 0.0;
  util::SimDuration reorder_window = 0;
  /// Per-packet probability of a latency spike of spike_delay.
  double spike_probability = 0.0;
  util::SimDuration spike_delay = 0;
  /// Periodic link flapping: every flap_period the link goes down for
  /// flap_down (packets sent inside a down-window are dropped). The phase
  /// is drawn once per direction from the fault stream. 0 = never flaps.
  util::SimDuration flap_period = 0;
  util::SimDuration flap_down = 0;
  /// Seed of this link's fault streams. Give every faulty link a distinct
  /// seed: the two directions derive independent child streams from it.
  std::uint64_t seed = 0;

  /// Whether any fault is configured (false => zero overhead, zero extra
  /// RNG draws, bit-identical behavior to a fault-free link).
  [[nodiscard]] bool enabled() const noexcept;
};

struct LinkFaultCounters {
  std::uint64_t packets = 0;        // packets that consulted the fault engine
  std::uint64_t burst_drops = 0;    // lost by the Gilbert–Elliott chain
  std::uint64_t flap_drops = 0;     // sent into a down-window
  std::uint64_t duplicates = 0;     // extra copies injected
  std::uint64_t corrupted = 0;      // delivered with flipped bits
  std::uint64_t corrupt_drops = 0;  // corrupted into undecodable garbage
  std::uint64_t reorders = 0;       // held back by a reorder window
  std::uint64_t spikes = 0;         // latency spikes

  [[nodiscard]] std::uint64_t drops() const noexcept { return burst_drops + flap_drops; }
  [[nodiscard]] std::uint64_t total() const noexcept {
    return burst_drops + flap_drops + duplicates + corrupted + corrupt_drops + reorders +
           spikes;
  }

  LinkFaultCounters& operator+=(const LinkFaultCounters& other) noexcept;

  /// Publish as "<prefix>.packets", "<prefix>.burst_drops", ... (adds
  /// current totals; call once per snapshot).
  void export_metrics(util::MetricsRegistry& registry, const std::string& prefix) const;
};

/// What the fault engine decided for one packet transmission.
struct FaultAction {
  bool drop = false;       // packet never reaches the link
  bool corrupt = false;    // flip bits in the wire encoding before delivery
  bool duplicate = false;  // transmit a second, independently delayed copy
  util::SimDuration extra_delay = 0;  // reorder hold-back + spike, summed
  /// Which fault fired, for kFaultInject/link_drop trace details
  /// ("burst_loss", "flap", ...); nullptr when nothing fired.
  const char* cause = nullptr;

  [[nodiscard]] bool any() const noexcept {
    return drop || corrupt || duplicate || extra_delay > 0;
  }
};

/// Mutable per-direction fault state. Owned by the Node face the direction
/// transmits from; created by connect() only when the config is enabled.
class LinkFaultState {
 public:
  /// `direction` is 0 for the a->b stream, 1 for b->a; each derives an
  /// independent RNG stream from config.seed.
  LinkFaultState(const LinkFaultConfig& config, int direction);

  /// Decide the fate of one packet sent at `now`. Draw order is fixed per
  /// enabled feature (flap, burst chain, corrupt, duplicate, reorder,
  /// spike), so a given (config, seed) always yields the same schedule.
  [[nodiscard]] FaultAction on_packet(util::SimTime now);

  /// Corrupt a packet through its wire encoding: 1..max_bit_flips seeded
  /// bit flips, then decode. nullopt = the corruption broke the framing
  /// and the packet must be dropped as garbage (counted as corrupt_drop;
  /// decoding anything other than TlvError is a codec bug and propagates).
  [[nodiscard]] std::optional<ndn::Interest> corrupt(const ndn::Interest& interest);
  [[nodiscard]] std::optional<ndn::Data> corrupt(const ndn::Data& data);
  [[nodiscard]] std::optional<ndn::Nack> corrupt(const ndn::Nack& nack);

  [[nodiscard]] const LinkFaultCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const LinkFaultConfig& config() const noexcept { return config_; }

 private:
  LinkFaultConfig config_;
  /// Decision stream (flap phase + per-packet fault draws). Corruption
  /// details draw from their own stream so the amount of randomness a
  /// corruption consumes never shifts later packets' fault decisions.
  util::Rng rng_;
  util::Rng corrupt_rng_;
  util::GilbertElliottChain chain_;
  util::SimDuration flap_phase_ = 0;
  LinkFaultCounters counters_;
};

// ---------------------------------------------------------------------------
// Per-node faults.

enum class NodeFaultKind : std::uint8_t {
  kCsWipe,      // clear the content store (cache restart)
  kPitSqueeze,  // shrink (or restore) the PIT capacity
};

[[nodiscard]] std::string_view to_string(NodeFaultKind kind) noexcept;

struct NodeFaultEvent {
  util::SimTime at = 0;
  NodeFaultKind kind = NodeFaultKind::kCsWipe;
  /// kPitSqueeze: the new pit_capacity (0 = unlimited).
  std::size_t pit_capacity = 0;
};

struct NodeFaultCounters {
  std::uint64_t cs_wipes = 0;
  std::uint64_t cs_entries_wiped = 0;
  std::uint64_t pit_squeezes = 0;

  void export_metrics(util::MetricsRegistry& registry, const std::string& prefix) const;
};

/// Schedule `events` against `forwarder` on its own scheduler. Counters (if
/// provided) must outlive the simulation. Each executed fault records a
/// kFaultInject trace event on the forwarder's node label.
void schedule_node_faults(Forwarder& forwarder, const std::vector<NodeFaultEvent>& events,
                          NodeFaultCounters* counters = nullptr);

}  // namespace ndnp::sim
