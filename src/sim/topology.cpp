#include "sim/topology.hpp"

#include "util/rng.hpp"

namespace ndnp::sim {

std::uint64_t Topology::next_seed() noexcept {
  // Distinct, deterministic per-node seeds derived from the topology seed.
  util::SplitMix64 sm(seed_ + ++node_counter_);
  return sm.next();
}

Forwarder& Topology::add_router(std::string name, ForwarderConfig config,
                                std::unique_ptr<core::CachePrivacyPolicy> policy) {
  config.seed = next_seed();
  auto router =
      std::make_unique<Forwarder>(scheduler_, std::move(name), config, std::move(policy));
  Forwarder& ref = *router;
  nodes_.push_back(std::move(router));
  return ref;
}

Consumer& Topology::add_consumer(std::string name) {
  auto consumer = std::make_unique<Consumer>(scheduler_, std::move(name), next_seed());
  Consumer& ref = *consumer;
  nodes_.push_back(std::move(consumer));
  return ref;
}

Producer& Topology::add_producer(std::string name, ndn::Name prefix, ProducerConfig config) {
  auto producer = std::make_unique<Producer>(scheduler_, std::move(name), std::move(prefix),
                                             "key-" + name, config, next_seed());
  Producer& ref = *producer;
  nodes_.push_back(std::move(producer));
  return ref;
}

std::unique_ptr<ProbeScenario> make_probe_scenario(const ScenarioParams& params) {
  if (params.core_hops < 1)
    throw std::invalid_argument("make_probe_scenario: need at least one hop to the producer");

  auto scenario = std::make_unique<ProbeScenario>(params.seed);
  Topology& topo = scenario->topology;

  scenario->router = &topo.add_router(
      "R", params.router_config, params.router_policy ? params.router_policy() : nullptr);
  scenario->user = &topo.add_consumer("U");
  scenario->adversary = &topo.add_consumer("Adv");
  scenario->producer = &topo.add_producer("P", params.producer_prefix, params.producer_config);

  // Access links: U and Adv each have face 0 toward R.
  topo.link(*scenario->user, *scenario->router, params.access_link);
  topo.link(*scenario->adversary, *scenario->router, params.access_link);

  // Core chain R -> X1 -> ... -> P. By default core routers run NoPrivacy
  // (the paper suggests involving only consumer-facing routers,
  // Section V-B); core_router_policy overrides that.
  Forwarder* upstream = scenario->router;
  for (std::size_t hop = 1; hop < params.core_hops; ++hop) {
    ForwarderConfig core_config = params.router_config;
    core_config.honor_scope = false;
    Forwarder& next =
        topo.add_router("X" + std::to_string(hop), core_config,
                        params.core_router_policy ? params.core_router_policy() : nullptr);
    const auto [up_face, down_face] = topo.link(*upstream, next, params.core_link);
    (void)down_face;
    upstream->add_route(params.producer_prefix, up_face);
    scenario->core.push_back(&next);
    upstream = &next;
  }
  const auto [last_face, producer_face] =
      topo.link(*upstream, *scenario->producer, params.core_link);
  (void)producer_face;
  upstream->add_route(params.producer_prefix, last_face);

  return scenario;
}

namespace {

[[nodiscard]] ForwarderConfig default_router_config() {
  ForwarderConfig config;
  config.cs_capacity = 0;  // unlimited: probe experiments control content counts themselves
  config.honor_scope = false;
  return config;
}

}  // namespace

ScenarioParams lan_scenario_params(std::uint64_t seed) {
  ScenarioParams params;
  params.access_link = lan_link(/*latency_ms=*/0.05, /*jitter_ms=*/0.05);
  params.core_link = wan_link(/*latency_ms=*/1.5, /*jitter_median_ms=*/0.2, /*jitter_sigma=*/0.5);
  params.core_hops = 2;
  params.router_config = default_router_config();
  params.seed = seed;
  return params;
}

ScenarioParams wan_scenario_params(std::uint64_t seed) {
  ScenarioParams params;
  // Aggregate several IP hops between the consumers and their first-hop
  // NDN router: higher base latency and wider jitter.
  params.access_link = wan_link(/*latency_ms=*/1.8, /*jitter_median_ms=*/0.35,
                                /*jitter_sigma=*/0.6);
  params.core_link = wan_link(/*latency_ms=*/1.2, /*jitter_median_ms=*/0.25,
                              /*jitter_sigma=*/0.5);
  params.core_hops = 3;
  params.router_config = default_router_config();
  params.seed = seed;
  return params;
}

ScenarioParams producer_adjacent_scenario_params(std::uint64_t seed) {
  ScenarioParams params;
  // Long, jittery consumer paths (~90 ms one way, matching the ~180-220 ms
  // RTTs of Figure 3(c)) and a fast short link R <-> P: the hit/miss delta
  // is small relative to path noise.
  params.access_link = wan_link(/*latency_ms=*/90.0, /*jitter_median_ms=*/4.0,
                                /*jitter_sigma=*/0.7);
  params.core_link = wan_link(/*latency_ms=*/1.0, /*jitter_median_ms=*/0.3,
                              /*jitter_sigma=*/0.5);
  params.core_hops = 1;  // P directly attached to R
  params.router_config = default_router_config();
  params.seed = seed;
  return params;
}

ScenarioParams local_host_scenario_params(std::uint64_t seed) {
  ScenarioParams params;
  // "Router" is the node-local daemon; apps talk to it over IPC. The
  // network behind it is one WAN hop to the producer.
  params.access_link = local_ipc_link(/*latency_ms=*/0.1, /*jitter_ms=*/0.15);
  params.core_link = wan_link(/*latency_ms=*/1.8, /*jitter_median_ms=*/0.5,
                              /*jitter_sigma=*/0.6);
  params.core_hops = 1;
  params.router_config = default_router_config();
  params.seed = seed;
  return params;
}

}  // namespace ndnp::sim
