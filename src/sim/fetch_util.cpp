#include "sim/fetch_util.hpp"

#include <memory>
#include <stdexcept>

namespace ndnp::sim {

namespace {

/// State of one reliable fetch. Lifetime: the pending-interest callbacks
/// registered with the Consumer each hold a shared_ptr, so the state lives
/// exactly as long as an attempt is outstanding.
struct ReliableState : std::enable_shared_from_this<ReliableState> {
  Consumer* consumer = nullptr;
  ndn::Name name;
  ReliableFetchOptions options;
  std::function<void(const ReliableFetchResult&)> on_done;
  std::size_t attempts = 0;

  void attempt() {
    ++attempts;
    ndn::Interest interest;
    interest.name = name;
    interest.private_req = options.private_req;
    interest.lifetime = options.timeout;
    auto self = shared_from_this();
    consumer->express_interest(
        interest,
        [self](const ndn::Data&, util::SimDuration rtt) {
          self->on_done({.succeeded = true, .attempts = self->attempts, .rtt = rtt});
        },
        /*face=*/0, options.timeout, [self](const ndn::Interest&) { self->retry(); },
        [self](const ndn::Nack&) { self->retry(); });
  }

  void retry() {
    if (attempts >= options.max_attempts) {
      on_done({.succeeded = false, .attempts = attempts, .rtt = 0});
      return;
    }
    attempt();
  }
};

}  // namespace

void reliable_fetch(Consumer& consumer, const ndn::Name& name,
                    std::function<void(const ReliableFetchResult&)> on_done,
                    const ReliableFetchOptions& options) {
  if (!on_done) throw std::invalid_argument("reliable_fetch: on_done is required");
  if (options.max_attempts == 0)
    throw std::invalid_argument("reliable_fetch: need at least one attempt");
  auto state = std::make_shared<ReliableState>();
  state->consumer = &consumer;
  state->name = name;
  state->options = options;
  state->on_done = std::move(on_done);
  state->attempt();
}

void segment_fetch(Consumer& consumer, const ndn::Name& prefix, std::size_t count,
                   std::function<void(const SegmentFetchResult&)> on_done,
                   const SegmentFetchOptions& options) {
  if (!on_done) throw std::invalid_argument("segment_fetch: on_done is required");
  if (options.window == 0) throw std::invalid_argument("segment_fetch: window must be >= 1");
  if (count == 0) {
    on_done({.succeeded = true, .segments = 0, .retransmissions = 0, .elapsed = 0});
    return;
  }

  struct SegmentState {
    Consumer* consumer = nullptr;
    ndn::Name prefix;
    std::size_t count = 0;
    SegmentFetchOptions options;
    std::function<void(const SegmentFetchResult&)> on_done;
    util::SimTime started_at = 0;
    std::size_t next_to_issue = 0;
    std::size_t completed = 0;
    std::size_t retransmissions = 0;
    bool failed = false;
  };
  auto state = std::make_shared<SegmentState>();
  state->consumer = &consumer;
  state->prefix = prefix;
  state->count = count;
  state->options = options;
  state->on_done = std::move(on_done);
  state->started_at = consumer.now();

  // Window pump: issuing a segment registers a completion callback that
  // issues the next one, keeping `window` segments in flight.
  auto issue = std::make_shared<std::function<void()>>();
  *issue = [state, issue] {
    if (state->failed || state->next_to_issue >= state->count) return;
    const std::size_t segment = state->next_to_issue++;
    reliable_fetch(
        *state->consumer, state->prefix.append_number(segment),
        [state, issue](const ReliableFetchResult& result) {
          state->retransmissions += result.attempts - (result.succeeded ? 1 : 0);
          if (!result.succeeded) {
            if (!state->failed) {
              state->failed = true;
              state->on_done({.succeeded = false,
                              .segments = state->completed,
                              .retransmissions = state->retransmissions,
                              .elapsed = state->consumer->now() - state->started_at});
            }
            return;
          }
          ++state->completed;
          if (state->completed == state->count) {
            state->on_done({.succeeded = true,
                            .segments = state->completed,
                            .retransmissions = state->retransmissions,
                            .elapsed = state->consumer->now() - state->started_at});
            return;
          }
          (*issue)();
        },
        state->options.per_segment);
  };
  const std::size_t initial = std::min(options.window, count);
  for (std::size_t i = 0; i < initial; ++i) (*issue)();
}

}  // namespace ndnp::sim
