#include "sim/faults.hpp"

#include <algorithm>

#include "ndn/tlv.hpp"
#include "sim/forwarder.hpp"
#include "util/metrics.hpp"
#include "util/tracing.hpp"

namespace ndnp::sim {

namespace {

/// Direction 0/1 of link seed s take SplitMix64(s) outputs 1/2; each
/// direction seed then expands into (decision, corruption) child seeds the
/// same way. Distinct link seeds therefore give fully independent streams.
std::uint64_t direction_seed(std::uint64_t seed, int direction) {
  util::SplitMix64 mix(seed);
  std::uint64_t s = mix.next();
  if (direction != 0) s = mix.next();
  return s;
}

std::uint64_t child_seed(std::uint64_t seed, int index) {
  util::SplitMix64 mix(seed);
  std::uint64_t s = mix.next();
  for (int i = 0; i < index; ++i) s = mix.next();
  return s;
}

}  // namespace

bool LinkFaultConfig::enabled() const noexcept {
  return burst_loss.enabled() || duplicate_probability > 0.0 || corrupt_probability > 0.0 ||
         (reorder_probability > 0.0 && reorder_window > 0) ||
         (spike_probability > 0.0 && spike_delay > 0) || (flap_period > 0 && flap_down > 0);
}

LinkFaultCounters& LinkFaultCounters::operator+=(const LinkFaultCounters& other) noexcept {
  packets += other.packets;
  burst_drops += other.burst_drops;
  flap_drops += other.flap_drops;
  duplicates += other.duplicates;
  corrupted += other.corrupted;
  corrupt_drops += other.corrupt_drops;
  reorders += other.reorders;
  spikes += other.spikes;
  return *this;
}

void LinkFaultCounters::export_metrics(util::MetricsRegistry& registry,
                                       const std::string& prefix) const {
  registry.counter(prefix + ".packets").inc(packets);
  registry.counter(prefix + ".burst_drops").inc(burst_drops);
  registry.counter(prefix + ".flap_drops").inc(flap_drops);
  registry.counter(prefix + ".duplicates").inc(duplicates);
  registry.counter(prefix + ".corrupted").inc(corrupted);
  registry.counter(prefix + ".corrupt_drops").inc(corrupt_drops);
  registry.counter(prefix + ".reorders").inc(reorders);
  registry.counter(prefix + ".spikes").inc(spikes);
}

LinkFaultState::LinkFaultState(const LinkFaultConfig& config, int direction)
    : config_(config),
      rng_(child_seed(direction_seed(config.seed, direction), 0)),
      corrupt_rng_(child_seed(direction_seed(config.seed, direction), 1)),
      chain_(config.burst_loss) {
  if (config_.flap_period > 0 && config_.flap_down > 0)
    flap_phase_ = static_cast<util::SimDuration>(
        rng_.uniform_u64(static_cast<std::uint64_t>(config_.flap_period)));
}

FaultAction LinkFaultState::on_packet(util::SimTime now) {
  ++counters_.packets;
  // Every enabled feature consumes its draws on every packet, regardless of
  // earlier features' outcomes, so one packet's fate never shifts the next
  // packet's draws.
  bool flap_down_now = false;
  if (config_.flap_period > 0 && config_.flap_down > 0)
    flap_down_now = (now + flap_phase_) % config_.flap_period < config_.flap_down;
  bool burst_lost = false;
  if (config_.burst_loss.enabled()) burst_lost = chain_.sample_loss(rng_);
  bool corrupt = false;
  if (config_.corrupt_probability > 0.0)
    corrupt = rng_.bernoulli(config_.corrupt_probability);
  bool duplicate = false;
  if (config_.duplicate_probability > 0.0)
    duplicate = rng_.bernoulli(config_.duplicate_probability);
  bool reorder = false;
  util::SimDuration reorder_extra = 0;
  if (config_.reorder_probability > 0.0 && config_.reorder_window > 0) {
    reorder = rng_.bernoulli(config_.reorder_probability);
    reorder_extra = static_cast<util::SimDuration>(
                        rng_.uniform01() * static_cast<double>(config_.reorder_window)) +
                    1;
  }
  bool spike = false;
  if (config_.spike_probability > 0.0 && config_.spike_delay > 0)
    spike = rng_.bernoulli(config_.spike_probability);

  FaultAction action;
  if (flap_down_now) {
    ++counters_.flap_drops;
    action.drop = true;
    action.cause = "flap";
  } else if (burst_lost) {
    ++counters_.burst_drops;
    action.drop = true;
    action.cause = "burst_loss";
  }
  if (action.drop) return action;
  if (corrupt) {
    action.corrupt = true;
    action.cause = "corrupt";
  }
  if (duplicate) {
    ++counters_.duplicates;
    action.duplicate = true;
    if (action.cause == nullptr) action.cause = "duplicate";
  }
  if (reorder) {
    ++counters_.reorders;
    action.extra_delay += reorder_extra;
    if (action.cause == nullptr) action.cause = "reorder";
  }
  if (spike) {
    ++counters_.spikes;
    action.extra_delay += config_.spike_delay;
    if (action.cause == nullptr) action.cause = "spike";
  }
  return action;
}

namespace {

/// Encode -> flip 1..max_flips seeded bits -> decode. TlvError means the
/// framing broke: the packet is unrecoverable garbage and must be dropped.
/// Any other exception escaping the decoder is a codec bug and propagates.
template <typename Packet, typename Decoder>
std::optional<Packet> corrupt_via_wire(util::Rng& rng, int max_flips, const Packet& packet,
                                       Decoder decode) {
  ndn::Buffer wire = ndn::encode(packet);
  if (wire.empty()) return std::nullopt;
  const std::uint64_t flips =
      1 + rng.uniform_u64(static_cast<std::uint64_t>(std::max(max_flips, 1)));
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::uint64_t bit = rng.uniform_u64(static_cast<std::uint64_t>(wire.size()) * 8);
    wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  try {
    return decode(wire);
  } catch (const ndn::TlvError&) {
    return std::nullopt;
  }
}

}  // namespace

std::optional<ndn::Interest> LinkFaultState::corrupt(const ndn::Interest& interest) {
  auto out = corrupt_via_wire(corrupt_rng_, config_.corrupt_max_bit_flips, interest,
                              [](const ndn::Buffer& wire) { return ndn::decode_interest(wire); });
  if (out.has_value())
    ++counters_.corrupted;
  else
    ++counters_.corrupt_drops;
  return out;
}

std::optional<ndn::Data> LinkFaultState::corrupt(const ndn::Data& data) {
  auto out = corrupt_via_wire(corrupt_rng_, config_.corrupt_max_bit_flips, data,
                              [](const ndn::Buffer& wire) { return ndn::decode_data(wire); });
  if (out.has_value())
    ++counters_.corrupted;
  else
    ++counters_.corrupt_drops;
  return out;
}

std::optional<ndn::Nack> LinkFaultState::corrupt(const ndn::Nack& nack) {
  // A NACK is framed here as its triggering interest plus a reason byte;
  // corruption hits the interest encoding (the reason survives).
  auto interest = corrupt(nack.interest);
  if (!interest.has_value()) return std::nullopt;
  return ndn::Nack{.interest = std::move(*interest), .reason = nack.reason};
}

// ---------------------------------------------------------------------------
// Per-node faults.

std::string_view to_string(NodeFaultKind kind) noexcept {
  switch (kind) {
    case NodeFaultKind::kCsWipe:
      return "cs_wipe";
    case NodeFaultKind::kPitSqueeze:
      return "pit_squeeze";
  }
  return "unknown";
}

void NodeFaultCounters::export_metrics(util::MetricsRegistry& registry,
                                       const std::string& prefix) const {
  registry.counter(prefix + ".cs_wipes").inc(cs_wipes);
  registry.counter(prefix + ".cs_entries_wiped").inc(cs_entries_wiped);
  registry.counter(prefix + ".pit_squeezes").inc(pit_squeezes);
}

void schedule_node_faults(Forwarder& forwarder, const std::vector<NodeFaultEvent>& events,
                          NodeFaultCounters* counters) {
  for (const NodeFaultEvent& event : events) {
    forwarder.scheduler().schedule_at(event.at, [&forwarder, event, counters] {
      switch (event.kind) {
        case NodeFaultKind::kCsWipe: {
          const std::size_t wiped = forwarder.cs().size();
          forwarder.cs().clear();
          if (counters != nullptr) {
            ++counters->cs_wipes;
            counters->cs_entries_wiped += wiped;
          }
          NDNP_TRACE_EVENT(util::TraceEventType::kFaultInject, forwarder.name(),
                           forwarder.now(), {}, "fault=cs_wipe", -1,
                           static_cast<std::int64_t>(wiped));
          break;
        }
        case NodeFaultKind::kPitSqueeze: {
          forwarder.set_pit_capacity(event.pit_capacity);
          if (counters != nullptr) ++counters->pit_squeezes;
          NDNP_TRACE_EVENT(util::TraceEventType::kFaultInject, forwarder.name(),
                           forwarder.now(), {}, "fault=pit_squeeze", -1,
                           static_cast<std::int64_t>(event.pit_capacity));
          break;
        }
      }
    });
  }
}

}  // namespace ndnp::sim
