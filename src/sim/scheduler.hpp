// Discrete-event scheduler.
//
// A binary heap of (time, sequence)-ordered events; equal-time events run
// in schedule order (FIFO), which keeps packet-level simulations
// deterministic. Single-threaded by design: network simulations at this
// scale are dominated by event dispatch, and determinism is worth more to
// the experiments than parallelism.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/sim_time.hpp"

namespace ndnp::sim {

class Scheduler {
 public:
  using Event = std::function<void()>;

  /// Schedule at an absolute time; must not be in the past.
  void schedule_at(util::SimTime when, Event event);

  /// Schedule `delay` after the current time (delay >= 0).
  void schedule_in(util::SimDuration delay, Event event);

  /// Current simulation time: the timestamp of the event being processed,
  /// or of the last processed event when idle.
  [[nodiscard]] util::SimTime now() const noexcept { return now_; }

  /// Run the earliest pending event; returns false if none are pending.
  bool run_one();

  /// Run until the queue drains.
  void run();

  /// Run events with timestamp <= `until` (the clock then advances to
  /// `until` even if the queue drained earlier).
  void run_until(util::SimTime until);

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

 private:
  struct Item {
    util::SimTime when;
    std::uint64_t seq;
    Event event;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  util::SimTime now_ = util::kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  /// Sequence number of the most recently dispatched event; together with
  /// now_ this lets run_one() assert (time, seq) dispatch order.
  std::uint64_t last_seq_ = 0;
};

}  // namespace ndnp::sim
