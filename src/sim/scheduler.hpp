// Discrete-event scheduler.
//
// Two implementations of one contract (see docs/PERFORMANCE.md):
//
//  - `WheelScheduler` (the default): a hierarchical timer wheel (calendar
//    queue) of 7 levels x 256 slots over 1.024 us ticks, with event nodes
//    carved from a slab free-list and callables stored inline in the node
//    (util::SmallFunction). Steady-state schedule/run cycles perform zero
//    heap allocations once the peak working set has been carved. Events
//    whose tick has been reached are drained through a small (when, seq)
//    binary heap, which is what preserves the exact dispatch contract.
//
//  - `HeapScheduler` (the reference): the original binary-heap
//    implementation, kept as the obviously-correct baseline. Build with
//    -DNDNP_SCHEDULER_REFERENCE=1 to make it the simulation-wide
//    `Scheduler`; tests/test_scheduler_differential.cpp proves the two
//    dispatch identically over seeded random workloads.
//
// The shared contract, which makes runs byte-identical across --jobs:
// events dispatch in strict (time, sequence) order — time never runs
// backwards, and equal-time events run in schedule (FIFO) order.
// Single-threaded by design: network simulations at this scale are
// dominated by event dispatch, and determinism is worth more to the
// experiments than parallelism.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <type_traits>
#include <set>
#include <utility>
#include <vector>

#include "util/sim_time.hpp"
#include "util/slab.hpp"
#include "util/small_function.hpp"

namespace ndnp::sim {

/// Inline capture budget for scheduled events. Sized for the simulation's
/// common captures (a couple of pointers plus a pooled packet handle);
/// larger callables transparently fall back to one heap node each, counted
/// by `heap_fallback_events()`.
inline constexpr std::size_t kEventInlineBytes = 96;
using EventFn = util::SmallFunction<kEventInlineBytes>;

/// Opaque handle to a cancellable event (see schedule_cancellable_at).
struct EventHandle {
  std::uint64_t seq = ~0ULL;
};

namespace detail {

/// Shared argument validation: rejects null std::function-likes (anything
/// contextually convertible to bool) while accepting plain lambdas.
template <typename F>
void throw_if_null_event(const F& event) {
  if constexpr (std::is_constructible_v<bool, const std::decay_t<F>&>) {
    if (!static_cast<bool>(event)) throw std::invalid_argument("Scheduler: null event");
  }
}

inline void throw_if_past(util::SimTime when, util::SimTime now) {
  if (when < now) throw std::logic_error("Scheduler: cannot schedule in the past");
}

inline void throw_if_negative(util::SimDuration delay) {
  if (delay < 0) throw std::logic_error("Scheduler: negative delay");
}

}  // namespace detail

// ---------------------------------------------------------------------------
// WheelScheduler: hierarchical timer wheel + slab-pooled events.

class WheelScheduler {
 public:
  /// Compatibility alias; schedule_* accept any void() callable directly
  /// (std::function included), so most callers never name this type.
  using Event = std::function<void()>;

  WheelScheduler() = default;
  WheelScheduler(const WheelScheduler&) = delete;
  WheelScheduler& operator=(const WheelScheduler&) = delete;
  ~WheelScheduler();

  /// Schedule at an absolute time; must not be in the past.
  template <typename F>
  void schedule_at(util::SimTime when, F&& event) {
    detail::throw_if_past(when, now_);
    detail::throw_if_null_event(event);
    (void)enqueue(when, EventFn(std::forward<F>(event)), false);
  }

  /// Schedule `delay` after the current time (delay >= 0).
  template <typename F>
  void schedule_in(util::SimDuration delay, F&& event) {
    detail::throw_if_negative(delay);
    schedule_at(now_ + delay, std::forward<F>(event));
  }

  /// Like schedule_at, but the returned handle can cancel the event before
  /// it runs. Cancellation is O(1) amortized; cancelled events never
  /// dispatch and do not count as processed. Only cancellable events touch
  /// the side table, so the plain schedule_* hot path stays allocation-free.
  template <typename F>
  [[nodiscard]] EventHandle schedule_cancellable_at(util::SimTime when, F&& event) {
    detail::throw_if_past(when, now_);
    detail::throw_if_null_event(event);
    return EventHandle{enqueue(when, EventFn(std::forward<F>(event)), true)};
  }

  template <typename F>
  [[nodiscard]] EventHandle schedule_cancellable_in(util::SimDuration delay, F&& event) {
    detail::throw_if_negative(delay);
    return schedule_cancellable_at(now_ + delay, std::forward<F>(event));
  }

  /// Cancel a pending cancellable event. Returns true if the event was
  /// still pending (it will not run); false if it already ran or was
  /// already cancelled.
  bool cancel(EventHandle handle);

  /// Current simulation time: the timestamp of the event being processed,
  /// or of the last processed event when idle.
  [[nodiscard]] util::SimTime now() const noexcept { return now_; }

  /// Run the earliest pending event; returns false if none are pending.
  bool run_one();

  /// Run until the queue drains.
  void run();

  /// Run events with timestamp <= `until` (the clock then advances to
  /// `until` even if the queue drained earlier; a deadline already in the
  /// past runs nothing and leaves the clock untouched).
  void run_until(util::SimTime until);

  [[nodiscard]] std::size_t pending() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  // --- introspection for tests / benches -----------------------------------
  /// Events whose callable did not fit the inline buffer (heap fallback).
  [[nodiscard]] std::uint64_t heap_fallback_events() const noexcept {
    return heap_fallback_events_;
  }
  /// Higher-level slot redistributions performed so far.
  [[nodiscard]] std::uint64_t cascades() const noexcept { return cascades_; }
  /// Slab chunks backing the event nodes (stable after warm-up).
  [[nodiscard]] std::size_t slab_chunks() const noexcept { return slab_.chunks(); }
  [[nodiscard]] std::size_t slab_peak_live() const noexcept { return slab_.peak_live(); }

  static constexpr const char* kImplName = "wheel";

 private:
  // 1.024 us per level-0 tick; 7 levels x 256 slots cover 66 bits of
  // nanoseconds, i.e. the full non-negative SimTime range.
  static constexpr int kTickShift = 10;
  static constexpr int kLevelBits = 8;
  static constexpr std::size_t kSlots = std::size_t{1} << kLevelBits;
  static constexpr std::size_t kSlotMask = kSlots - 1;
  static constexpr int kLevels = 7;
  static constexpr std::size_t kBitmapWords = kSlots / 64;

  struct EventNode {
    util::SimTime when;
    std::uint64_t seq;
    bool cancellable;
    EventNode* next;
    EventFn fn;

    EventNode(util::SimTime w, std::uint64_t s, bool c, EventFn f)
        : when(w), seq(s), cancellable(c), next(nullptr), fn(std::move(f)) {}
  };

  struct ReadyItem {
    util::SimTime when;
    std::uint64_t seq;
    EventNode* node;
  };
  /// Min-heap comparator: true when `a` dispatches after `b`.
  struct DispatchesAfter {
    bool operator()(const ReadyItem& a, const ReadyItem& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint64_t tick_of(util::SimTime when) noexcept {
    return static_cast<std::uint64_t>(when) >> kTickShift;
  }

  std::uint64_t enqueue(util::SimTime when, EventFn fn, bool cancellable);
  void place(EventNode* node);
  void ready_push(EventNode* node);
  void reap_ready_top();
  bool ensure_ready();
  void advance();
  void cascade(int level, std::size_t idx);
  void dump_slot(std::size_t idx);
  void dispatch_front();
  [[nodiscard]] int next_occupied(int level, std::size_t from) const noexcept;
  [[nodiscard]] bool is_cancelled(const EventNode& node) const {
    return node.cancellable && live_cancellable_.find(node.seq) == live_cancellable_.end();
  }

  util::Slab<EventNode> slab_;
  EventNode* slots_[kLevels][kSlots] = {};
  std::uint64_t bitmap_[kLevels][kBitmapWords] = {};
  std::vector<ReadyItem> ready_;
  /// Tick whose level-0 slot has been drained into `ready_`; events at or
  /// before it go straight to the ready heap.
  std::uint64_t cursor_tick_ = 0;
  std::set<std::uint64_t> live_cancellable_;  // ordered: determinism guard bans hash sets

  util::SimTime now_ = util::kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  /// Sequence number of the most recently dispatched event; together with
  /// now_ this lets dispatch assert (time, seq) order.
  std::uint64_t last_seq_ = 0;
  std::size_t live_ = 0;
  std::uint64_t heap_fallback_events_ = 0;
  std::uint64_t cascades_ = 0;
};

// ---------------------------------------------------------------------------
// HeapScheduler: the original binary-heap implementation, kept as the
// reference the differential soak harness replays against.

class HeapScheduler {
 public:
  using Event = std::function<void()>;

  template <typename F>
  void schedule_at(util::SimTime when, F&& event) {
    detail::throw_if_past(when, now_);
    detail::throw_if_null_event(event);
    (void)enqueue(when, EventFn(std::forward<F>(event)), false);
  }

  template <typename F>
  void schedule_in(util::SimDuration delay, F&& event) {
    detail::throw_if_negative(delay);
    schedule_at(now_ + delay, std::forward<F>(event));
  }

  template <typename F>
  [[nodiscard]] EventHandle schedule_cancellable_at(util::SimTime when, F&& event) {
    detail::throw_if_past(when, now_);
    detail::throw_if_null_event(event);
    return EventHandle{enqueue(when, EventFn(std::forward<F>(event)), true)};
  }

  template <typename F>
  [[nodiscard]] EventHandle schedule_cancellable_in(util::SimDuration delay, F&& event) {
    detail::throw_if_negative(delay);
    return schedule_cancellable_at(now_ + delay, std::forward<F>(event));
  }

  bool cancel(EventHandle handle);

  [[nodiscard]] util::SimTime now() const noexcept { return now_; }
  bool run_one();
  void run();
  void run_until(util::SimTime until);
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  static constexpr const char* kImplName = "heap";

 private:
  struct Item {
    util::SimTime when;
    std::uint64_t seq;
    bool cancellable;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::uint64_t enqueue(util::SimTime when, EventFn fn, bool cancellable);
  void reap_cancelled_top();

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  std::set<std::uint64_t> live_cancellable_;  // ordered: determinism guard bans hash sets
  util::SimTime now_ = util::kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t last_seq_ = 0;
  std::size_t live_ = 0;
};

/// The simulation-wide scheduler. -DNDNP_SCHEDULER_REFERENCE=1 swaps in the
/// binary-heap reference implementation (a full-suite CI job pins golden
/// byte-identity under it).
#if defined(NDNP_SCHEDULER_REFERENCE) && NDNP_SCHEDULER_REFERENCE
using Scheduler = HeapScheduler;
#else
using Scheduler = WheelScheduler;
#endif

}  // namespace ndnp::sim
