// Consumer-side fetch utilities.
//
// ReliableFetcher wraps one interest with timeout-driven retransmission —
// the standard NDN ARQ loop whose cache-assisted recovery is exactly why
// Section V-A insists the unpredictable-name countermeasure must keep
// router caching intact. SegmentFetcher pipelines a fixed window of
// segment interests (/prefix/0, /prefix/1, ...), the shape of the
// multi-object content the fragment-correlation attack exploits.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/apps.hpp"

namespace ndnp::sim {

struct ReliableFetchOptions {
  /// Retransmission timeout per attempt.
  util::SimDuration timeout = util::millis(200);
  /// Total attempts (first transmission included).
  std::size_t max_attempts = 4;
  bool private_req = false;
};

struct ReliableFetchResult {
  bool succeeded = false;
  /// Attempts actually used (>= 1 when succeeded).
  std::size_t attempts = 0;
  /// RTT of the successful attempt.
  util::SimDuration rtt = 0;
};

/// Fetch `name` through `consumer` with retransmissions; `on_done` fires
/// exactly once, with success or final failure. NACKs count as failed
/// attempts and are retried (transient no-route may heal).
void reliable_fetch(Consumer& consumer, const ndn::Name& name,
                    std::function<void(const ReliableFetchResult&)> on_done,
                    const ReliableFetchOptions& options = {});

struct SegmentFetchOptions {
  /// Segments in flight simultaneously.
  std::size_t window = 4;
  ReliableFetchOptions per_segment;
};

struct SegmentFetchResult {
  bool succeeded = false;
  std::size_t segments = 0;
  /// Total retransmitted interests across all segments.
  std::size_t retransmissions = 0;
  /// Completion time from start of the fetch.
  util::SimDuration elapsed = 0;
};

/// Fetch segments prefix/0 .. prefix/(count-1) with a sliding window;
/// `on_done` fires once when all segments arrived or any segment
/// exhausted its attempts.
void segment_fetch(Consumer& consumer, const ndn::Name& prefix, std::size_t count,
                   std::function<void(const SegmentFetchResult&)> on_done,
                   const SegmentFetchOptions& options = {});

}  // namespace ndnp::sim
