#include "sim/forwarder.hpp"

#include <algorithm>

#include "core/policies.hpp"
#include "util/invariant.hpp"
#include "util/logging.hpp"
#include "util/tracing.hpp"

namespace ndnp::sim {

Forwarder::Forwarder(Scheduler& scheduler, std::string name, ForwarderConfig config,
                     std::unique_ptr<core::CachePrivacyPolicy> policy)
    : Node(scheduler, std::move(name), config.seed),
      config_(config),
      cs_(config.cs_capacity, config.eviction, config.seed ^ 0x9e3779b97f4a7c15ULL),
      policy_(policy ? std::move(policy) : std::make_unique<core::NoPrivacyPolicy>()) {
  cs_.set_trace_label(this->name());
  policy_->set_trace_label(this->name());
}

std::string_view to_string(ForwardingStrategy strategy) noexcept {
  switch (strategy) {
    case ForwardingStrategy::kBestRoute: return "best-route";
    case ForwardingStrategy::kRoundRobin: return "round-robin";
    case ForwardingStrategy::kMulticast: return "multicast";
  }
  return "?";
}

void Forwarder::arm_telemetry(telemetry::TelemetryHub* hub) {
  telemetry_ = hub;
  if (hub == nullptr) return;
  // Occupancy gauges ride along with the built-in detector series. Probes
  // read live state at sample time; registration must precede the first
  // sample (the recorder freezes its column set there).
  hub->add_probe("cs.size", [this] { return static_cast<double>(cs_.size()); });
  hub->add_probe("pit.size", [this] { return static_cast<double>(pit_.size()); });
  hub->add_probe("forwarder.interests_received",
                 [this] { return static_cast<double>(stats_.interests_received); });
  hub->add_probe("forwarder.forwarded_interests",
                 [this] { return static_cast<double>(stats_.forwarded_interests); });
}

void Forwarder::add_route(const ndn::Name& prefix, FaceId next_hop) {
  auto& next_hops = fib_[prefix].next_hops;
  if (std::find(next_hops.begin(), next_hops.end(), next_hop) == next_hops.end())
    next_hops.push_back(next_hop);
}

void Forwarder::receive_interest(const ndn::Interest& interest, FaceId in_face) {
  ++stats_.interests_received;
  NDNP_TRACE_EVENT(util::TraceEventType::kInterestRx, name(), now(), interest.name.to_uri(),
                   interest.private_req ? "private=1" : "private=0",
                   static_cast<std::int64_t>(in_face));
  const util::PoolRef<ndn::Interest> pending = pooled_copy(interest);
  scheduler().schedule_in(config_.processing_delay,
                          [this, pending, in_face] { handle_interest(*pending, in_face); });
}

void Forwarder::receive_data(const ndn::Data& data, FaceId in_face) {
  ++stats_.data_received;
  NDNP_TRACE_EVENT(util::TraceEventType::kDataRx, name(), now(), data.name.to_uri(), {},
                   static_cast<std::int64_t>(in_face));
  const util::PoolRef<ndn::Data> pending = pooled_copy(data);
  scheduler().schedule_in(config_.processing_delay,
                          [this, pending, in_face] { handle_data(*pending, in_face); });
}

void Forwarder::receive_nack(const ndn::Nack& nack, FaceId in_face) {
  ++stats_.nacks_received;
  NDNP_TRACE_EVENT(util::TraceEventType::kNackRx, name(), now(), nack.interest.name.to_uri(),
                   {}, static_cast<std::int64_t>(in_face));
  const util::PoolRef<ndn::Nack> pending = pooled_copy(nack);
  scheduler().schedule_in(config_.processing_delay,
                          [this, pending, in_face] { handle_nack(*pending, in_face); });
}

Forwarder::PitEntry* Forwarder::pit_find(std::uint64_t name_hash,
                                         const ndn::Name& name) noexcept {
  return pit_.find(name_hash,
                   [&name](const PitEntry& entry) { return entry.first_interest.name == name; });
}

bool Forwarder::pit_erase(std::uint64_t name_hash, const ndn::Name& name) noexcept {
  return pit_.erase(name_hash,
                    [&name](const PitEntry& entry) { return entry.first_interest.name == name; });
}

void Forwarder::handle_interest(const ndn::Interest& interest, FaceId in_face) {
  NDNP_TRACE_SCOPE(name().c_str(), "forwarder", "handle_interest");
  // One hash per packet: every PIT probe below reuses it. With telemetry
  // armed, one visit_prefix_hashes pass yields the depth-2 prefix-bucket
  // hash alongside the full hash at the same cost (FNV-1a is
  // prefix-incremental), so the hot path never hashes the name twice.
  std::uint64_t name_hash = 0;
  std::uint64_t prefix_bucket_hash = 0;
#if NDNP_TELEMETRY
  if (telemetry_ != nullptr) {
    std::size_t depth = 0;
    std::uint64_t depth2 = 0;
    interest.name.visit_prefix_hashes([&](std::uint64_t h) {
      if (depth == 2) depth2 = h;
      name_hash = h;
      ++depth;
    });
    prefix_bucket_hash = depth > 2 ? depth2 : name_hash;
  } else {
    name_hash = interest.name.hash64();
  }
  const auto telemetry_note = [&](telemetry::LookupOutcome outcome) {
    if (telemetry_ != nullptr)
      telemetry_->on_lookup(static_cast<std::uint64_t>(in_face), prefix_bucket_hash, outcome,
                            now());
  };
#else
  name_hash = interest.name.hash64();
  (void)prefix_bucket_hash;
  const auto telemetry_note = [](telemetry::LookupOutcome) {};
#endif

  // Loop suppression: a nonce already recorded for this name means the
  // interest circled back.
  if (PitEntry* pending = pit_find(name_hash, interest.name)) {
    if (pending->nonces.contains(interest.nonce)) {
      ++stats_.nonce_drops;
      return;
    }
  }

  // 1. Content Store, filtered through the privacy policy (stale entries
  // are invisible to MustBeFresh interests).
  if (cache::Entry* entry = cs_.find(interest, now())) {
    const bool effective_private = core::resolve_effective_privacy(*entry, interest);
    const core::LookupDecision decision =
        policy_->on_cached_lookup(*entry, interest, effective_private, now());
    // All accesses refresh recency, even hidden ones (Section VII).
    cs_.touch(*entry, now());
    switch (decision.action) {
      case core::LookupAction::kExposeHit:
        ++stats_.exposed_hits;
        telemetry_note(telemetry::LookupOutcome::kExposedHit);
        send_data(in_face, entry->data);
        return;
      case core::LookupAction::kDelayedHit: {
        ++stats_.delayed_hits;
        telemetry_note(telemetry::LookupOutcome::kDelayedHit);
        // Pooled copy: the CS entry may be evicted before the delay fires.
        const util::PoolRef<ndn::Data> held = pooled_copy(entry->data);
        scheduler().schedule_in(decision.artificial_delay,
                                [this, in_face, held] { send_data(in_face, *held); });
        return;
      }
      case core::LookupAction::kSimulatedMiss:
        ++stats_.simulated_misses;
        telemetry_note(telemetry::LookupOutcome::kSimulatedMiss);
        break;  // fall through to the miss path below
    }
  } else {
    ++stats_.true_misses;
    telemetry_note(telemetry::LookupOutcome::kTrueMiss);
  }

  // 2. PIT: collapse onto an existing pending interest for the same name.
  if (PitEntry* entry = pit_find(name_hash, interest.name)) {
    // A resident entry past its expiry means the timeout event leaked.
    NDNP_INVARIANT_CHECK("forwarder", now() <= entry->expires_at,
                         "PIT entry for %s leaked past lifetime (now=%lld expires=%lld)",
                         interest.name.to_uri().c_str(), static_cast<long long>(now()),
                         static_cast<long long>(entry->expires_at));
    // The nonce-loop gate above returned for known nonces; re-aggregating
    // one here would re-arm a looping interest.
    NDNP_INVARIANT_CHECK("forwarder", !entry->nonces.contains(interest.nonce),
                         "nonce %llu re-aggregated for %s",
                         static_cast<unsigned long long>(interest.nonce),
                         interest.name.to_uri().c_str());
    entry->nonces.insert(interest.nonce);
    const bool known_face =
        std::any_of(entry->downstreams.begin(), entry->downstreams.end(),
                    [in_face](const Downstream& d) { return d.face == in_face; });
    if (!known_face) entry->downstreams.push_back({.face = in_face, .arrived_at = now()});
    ++stats_.collapsed_interests;
    NDNP_TRACE_EVENT(util::TraceEventType::kPitAggregate, name(), now(),
                     interest.name.to_uri(), {}, static_cast<std::int64_t>(in_face), 0,
                     static_cast<std::int64_t>(entry->downstreams.size()));
    return;
  }

  // 3. Forward upstream per FIB, creating a PIT entry.
  forward_interest(interest, in_face, name_hash);
}

void Forwarder::forward_interest(const ndn::Interest& interest, FaceId in_face,
                                 std::uint64_t name_hash) {
  // Scope: the field counts NDN entities the interest may traverse, source
  // included. An honoring router that received the interest with scope <= 2
  // is the last allowed entity and must not forward.
  ndn::Interest upstream = interest;
  if (config_.honor_scope && interest.scope) {
    if (*interest.scope <= 2) {
      ++stats_.scope_drops;
      return;
    }
    upstream.scope = *interest.scope - 1;
  }

  FibEntry* fib_entry = fib_lookup(interest.name);
  const std::vector<FaceId> next_hops =
      fib_entry ? select_next_hops(*fib_entry, in_face) : std::vector<FaceId>{};
  if (next_hops.empty()) {
    ++stats_.no_route_drops;
    util::log(util::LogLevel::kDebug, "%s: no route for %s", name().c_str(),
              interest.name.to_uri().c_str());
    if (config_.send_nacks) {
      ++stats_.nacks_sent;
      send_nack(in_face, {.interest = interest, .reason = ndn::NackReason::kNoRoute});
    }
    return;
  }

  if (config_.pit_capacity != 0 && pit_.size() >= config_.pit_capacity) {
    ++stats_.pit_overflows;
    if (config_.send_nacks) {
      ++stats_.nacks_sent;
      send_nack(in_face, {.interest = interest, .reason = ndn::NackReason::kPitOverflow});
    }
    return;
  }

  // The caller dispatched here only when no entry collapsed this interest;
  // inserting over a live entry would orphan its downstreams and timer.
  NDNP_INVARIANT_CHECK("forwarder", pit_find(name_hash, interest.name) == nullptr,
                       "duplicate PIT insert for %s", interest.name.to_uri().c_str());

  // Clamp the requested lifetime: a corrupted or hostile interest can carry
  // a lifetime that decodes negative, and a negative timer delay would
  // abort the scheduler (found by the fault fuzzer).
  const util::SimDuration lifetime =
      std::max<util::SimDuration>(interest.lifetime.value_or(config_.pit_timeout), 0);

  PitEntry entry;
  entry.first_interest = interest;
  entry.downstreams.push_back({.face = in_face, .arrived_at = now()});
  entry.nonces.insert(interest.nonce);
  entry.created_at = now();
  entry.expires_at = now() + lifetime;
  entry.version = next_pit_version_++;
  const std::uint64_t version = entry.version;
  pit_.emplace(name_hash, std::move(entry), [&interest](const PitEntry& existing) {
    return existing.first_interest.name == interest.name;
  });
  ++stats_.pit_inserts;
  NDNP_INVARIANT_CHECK("forwarder",
                       config_.pit_capacity == 0 || pit_.size() <= config_.pit_capacity,
                       "PIT size %zu exceeds capacity %zu after insert", pit_.size(),
                       config_.pit_capacity);
  NDNP_TRACE_EVENT(util::TraceEventType::kPitCreate, name(), now(), interest.name.to_uri(),
                   {}, static_cast<std::int64_t>(in_face));
  schedule_pit_timeout(interest.name, name_hash, version, lifetime);

  for (const FaceId next_hop : next_hops) {
    ++stats_.forwarded_interests;
    send_interest(next_hop, upstream);
  }
}

void Forwarder::handle_data(const ndn::Data& data, FaceId) {
  NDNP_TRACE_SCOPE(name().c_str(), "forwarder", "handle_data");
  // Gather every PIT entry this Data satisfies: PIT keys are interest
  // names, which must be prefixes of the data name, so only the
  // size()+1 prefixes of data.name are candidates. One FNV pass yields
  // all candidate hashes; the probe compares against the stored interest
  // name in place, so no prefix Name is ever materialized.
  const std::vector<std::uint64_t> prefix_hashes = data.name.prefix_hashes();
  std::vector<std::pair<std::uint64_t, PitEntry*>> matches;
  for (std::size_t len = 0; len <= data.name.size(); ++len) {
    PitEntry* entry =
        pit_.find(prefix_hashes[len], [&data, len](const PitEntry& candidate) {
          return candidate.first_interest.name.size() == len &&
                 candidate.first_interest.name.is_prefix_of(data.name);
        });
    if (entry != nullptr && data.satisfies(entry->first_interest))
      matches.push_back({prefix_hashes[len], entry});
  }
  if (matches.empty()) {
    // NDN rule: content is never forwarded (nor cached) without a
    // preceding interest.
    ++stats_.unsolicited_data;
    return;
  }

  // Cache. If the exact name is already cached (e.g. the Data answers a
  // simulated miss we forwarded), refresh the payload but keep the policy
  // state — re-initializing would resample Random-Cache thresholds and
  // leak.
  if (cache::Entry* existing = cs_.find_exact(data.name)) {
    existing->data = data;
    cs_.touch(*existing, now());
  } else if (config_.cache_admission_probability < 1.0 &&
             !rng().bernoulli(config_.cache_admission_probability)) {
    ++stats_.admission_skips;
  } else {
    // The earliest-created matching PIT entry defines the fetch delay
    // (interest-in -> content-out) and the marking cause.
    const PitEntry* earliest =
        std::min_element(matches.begin(), matches.end(), [](const auto& a, const auto& b) {
          return a.second->created_at < b.second->created_at;
        })->second;
    cache::EntryMeta meta;
    meta.inserted_at = now();
    meta.last_access = now();
    meta.fetch_delay = now() - earliest->created_at;
    cache::Entry& entry = cs_.insert(data, meta);
    core::init_privacy_marking(entry, earliest->first_interest);
    policy_->on_insert(entry, earliest->first_interest, now());
  }

  // Forward downstream and flush the satisfied PIT entries. The policy may
  // pad the miss response (constant-gamma Always-Delay equalizes fast
  // misses with delayed hits); padding is per PIT entry since each has its
  // own interest-in time.
  for (const auto& [match_hash, match] : matches) {
    NDNP_INVARIANT_CHECK("forwarder", now() <= match->expires_at,
                         "satisfying PIT entry for %s past its lifetime (now=%lld "
                         "expires=%lld)",
                         match->first_interest.name.to_uri().c_str(),
                         static_cast<long long>(now()),
                         static_cast<long long>(match->expires_at));
    const bool treated_private =
        data.producer_marked_private() || match->first_interest.private_req;
    const util::SimDuration fetch_delay = now() - match->created_at;
    NDNP_TRACE_EVENT(util::TraceEventType::kPitSatisfy, name(), now(),
                     match->first_interest.name.to_uri(), {}, -1, fetch_delay,
                     static_cast<std::int64_t>(match->downstreams.size()));
    const util::SimDuration miss_pad =
        policy_->miss_response_delay(fetch_delay, treated_private) - fetch_delay;
    for (const Downstream& downstream : match->downstreams) {
      util::SimDuration pad = miss_pad;
      if (config_.pad_collapsed_private && treated_private &&
          downstream.arrived_at > match->created_at) {
        // Make the collapsed requester wait as long as a fresh fetch
        // started at its own arrival would have taken.
        pad = std::max(pad, downstream.arrived_at - match->created_at);
      }
      if (pad > 0) {
        const util::PoolRef<ndn::Data> held = pooled_copy(data);
        const FaceId face = downstream.face;
        scheduler().schedule_in(pad, [this, face, held] { send_data(face, *held); });
      } else {
        send_data(downstream.face, data);
      }
      ++stats_.data_forwarded;
    }
    // Tombstone deletion: the other matches' PitEntry pointers stay valid.
    pit_.erase(match_hash, [entry = match](const PitEntry& candidate) {
      return &candidate == entry;
    });
    ++stats_.pit_satisfied;
  }
}

void Forwarder::handle_nack(const ndn::Nack& nack, FaceId) {
  // A NACK from upstream kills the pending interest: propagate it to every
  // downstream face and flush the PIT entry. (With multicast strategies a
  // sibling next hop may still answer; we keep the simple semantics of
  // first-signal-wins, which matches best-route.)
  const std::uint64_t name_hash = nack.interest.name.hash64();
  PitEntry* entry = pit_find(name_hash, nack.interest.name);
  if (!entry) return;
  for (const Downstream& downstream : entry->downstreams) {
    ++stats_.nacks_sent;
    send_nack(downstream.face, nack);
  }
  pit_erase(name_hash, nack.interest.name);
  ++stats_.pit_nack_erased;
}

Forwarder::FibEntry* Forwarder::fib_lookup(const ndn::Name& name) {
  for (std::size_t len = name.size() + 1; len-- > 0;) {
    const auto it = fib_.find(name.prefix(len));
    if (it != fib_.end()) return &it->second;
  }
  return nullptr;
}

std::vector<FaceId> Forwarder::select_next_hops(FibEntry& entry, FaceId in_face) {
  std::vector<FaceId> out;
  switch (config_.strategy) {
    case ForwardingStrategy::kBestRoute:
      for (const FaceId face : entry.next_hops) {
        if (face == in_face) continue;
        out.push_back(face);
        break;
      }
      break;
    case ForwardingStrategy::kRoundRobin:
      for (std::size_t i = 0; i < entry.next_hops.size(); ++i) {
        const FaceId face =
            entry.next_hops[(entry.round_robin_cursor + i) % entry.next_hops.size()];
        if (face == in_face) continue;
        out.push_back(face);
        entry.round_robin_cursor =
            (entry.round_robin_cursor + i + 1) % entry.next_hops.size();
        break;
      }
      break;
    case ForwardingStrategy::kMulticast:
      for (const FaceId face : entry.next_hops)
        if (face != in_face) out.push_back(face);
      break;
  }
  return out;
}

void Forwarder::schedule_pit_timeout(const ndn::Name& name, std::uint64_t name_hash,
                                     std::uint64_t version, util::SimDuration lifetime) {
  scheduler().schedule_in(lifetime, [this, name, name_hash, version] {
    const PitEntry* entry = pit_find(name_hash, name);
    if (entry != nullptr && entry->version == version) {
      // The timer was armed for exactly this entry's lifetime; firing at
      // any other instant means the expiry bookkeeping drifted.
      NDNP_INVARIANT_CHECK("forwarder", now() == entry->expires_at,
                           "expiry timer for %s fired at %lld, entry expires at %lld",
                           name.to_uri().c_str(), static_cast<long long>(now()),
                           static_cast<long long>(entry->expires_at));
      pit_erase(name_hash, name);
      ++stats_.pit_expirations;
      NDNP_TRACE_EVENT(util::TraceEventType::kPitExpire, this->name(), now(), name.to_uri());
    }
  });
}

void Forwarder::export_metrics(util::MetricsRegistry& registry,
                               const std::string& prefix) const {
  registry.counter(prefix + ".interests_received").inc(stats_.interests_received);
  registry.counter(prefix + ".data_received").inc(stats_.data_received);
  registry.counter(prefix + ".exposed_hits").inc(stats_.exposed_hits);
  registry.counter(prefix + ".delayed_hits").inc(stats_.delayed_hits);
  registry.counter(prefix + ".simulated_misses").inc(stats_.simulated_misses);
  registry.counter(prefix + ".true_misses").inc(stats_.true_misses);
  registry.counter(prefix + ".forwarded_interests").inc(stats_.forwarded_interests);
  registry.counter(prefix + ".collapsed_interests").inc(stats_.collapsed_interests);
  registry.counter(prefix + ".nonce_drops").inc(stats_.nonce_drops);
  registry.counter(prefix + ".scope_drops").inc(stats_.scope_drops);
  registry.counter(prefix + ".no_route_drops").inc(stats_.no_route_drops);
  registry.counter(prefix + ".pit_overflows").inc(stats_.pit_overflows);
  registry.counter(prefix + ".admission_skips").inc(stats_.admission_skips);
  registry.counter(prefix + ".nacks_sent").inc(stats_.nacks_sent);
  registry.counter(prefix + ".nacks_received").inc(stats_.nacks_received);
  registry.counter(prefix + ".unsolicited_data").inc(stats_.unsolicited_data);
  registry.counter(prefix + ".pit_expirations").inc(stats_.pit_expirations);
  registry.counter(prefix + ".data_forwarded").inc(stats_.data_forwarded);
  registry.counter(prefix + ".pit_size").inc(pit_.size());
  registry.counter(prefix + ".pit_inserts").inc(stats_.pit_inserts);
  registry.counter(prefix + ".pit_satisfied").inc(stats_.pit_satisfied);
  registry.counter(prefix + ".pit_nack_erased").inc(stats_.pit_nack_erased);
  cs_.export_metrics(registry, prefix + ".cs");
  policy_->export_metrics(registry, prefix + ".policy");
  export_fault_metrics(registry, prefix);
  if (telemetry_ != nullptr) telemetry_->export_metrics(registry, prefix + ".telemetry");
}

void Forwarder::check_invariants() const {
  // PIT entry conservation: every insert left the table through exactly one
  // of Data satisfaction, lifetime expiry or a NACK, or is still resident.
  NDNP_INVARIANT_CHECK("forwarder",
                       stats_.pit_inserts == stats_.pit_satisfied + stats_.pit_expirations +
                                                 stats_.pit_nack_erased + pit_.size(),
                       "%s: pit_inserts=%llu != satisfied=%llu + expired=%llu + "
                       "nack_erased=%llu + resident=%zu",
                       name().c_str(), static_cast<unsigned long long>(stats_.pit_inserts),
                       static_cast<unsigned long long>(stats_.pit_satisfied),
                       static_cast<unsigned long long>(stats_.pit_expirations),
                       static_cast<unsigned long long>(stats_.pit_nack_erased), pit_.size());
  // Interest disposition: at quiescence every received interest was
  // resolved through exactly one of the handler's exit paths.
  const std::uint64_t dispositions = stats_.nonce_drops + stats_.exposed_hits +
                                     stats_.delayed_hits + stats_.collapsed_interests +
                                     stats_.scope_drops + stats_.no_route_drops +
                                     stats_.pit_overflows + stats_.pit_inserts;
  NDNP_INVARIANT_CHECK("forwarder", stats_.interests_received == dispositions,
                       "%s: interests_received=%llu != dispositions=%llu", name().c_str(),
                       static_cast<unsigned long long>(stats_.interests_received),
                       static_cast<unsigned long long>(dispositions));
  cs_.check_integrity();
  check_face_conservation();
}

}  // namespace ndnp::sim
