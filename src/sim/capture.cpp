#include "sim/capture.hpp"

#include <ostream>

namespace ndnp::sim {

std::string_view to_string(PacketKind kind) noexcept {
  switch (kind) {
    case PacketKind::kInterest: return "INTEREST";
    case PacketKind::kData: return "DATA";
    case PacketKind::kNack: return "NACK";
  }
  return "?";
}

std::size_t PacketTap::count(PacketKind kind) const noexcept {
  std::size_t n = 0;
  for (const CapturedPacket& packet : packets_)
    if (packet.kind == kind) ++n;
  return n;
}

void PacketTap::dump(std::ostream& out) const {
  for (const CapturedPacket& packet : packets_) {
    out << util::to_millis(packet.sent_at) << "ms " << packet.sender << " > "
        << packet.receiver << ' ' << to_string(packet.kind) << ' ' << packet.name.to_uri()
        << " (" << packet.wire_bytes << "B)\n";
  }
}

}  // namespace ndnp::sim
