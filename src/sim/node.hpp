// Simulation node base class and face plumbing.
//
// A node is anything that terminates NDN links: routers (Forwarder),
// content producers, consumers, adversaries. Nodes exchange Interest/Data
// packets over faces; a face is one endpoint of a bidirectional
// point-to-point link created by connect(). Packet hand-off goes through
// the shared Scheduler with a per-direction sampled link delay, so all
// timing the attacks measure emerges from link configs plus node processing
// delays.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "ndn/packet.hpp"
#include "sim/faults.hpp"
#include "sim/link.hpp"
#include "sim/scheduler.hpp"
#include "util/slab.hpp"

namespace ndnp::util {
class MetricsRegistry;
}

namespace ndnp::sim {

using FaceId = std::size_t;

/// Per-face packet conservation ledger: every transmit attempt either gets
/// lost (link loss or injected fault) or delivered — nothing is invented,
/// nothing silently vanishes. `deliveries` is tracked only on faces with
/// fault injection enabled (counting it costs a callback wrapper per
/// packet, which benign hot paths do not pay); on those faces, at
/// quiescence, packets_out == losses + deliveries.
struct FaceAccounting {
  std::uint64_t packets_out = 0;
  std::uint64_t losses = 0;
  std::uint64_t deliveries = 0;
};

class Node {
 public:
  Node(Scheduler& scheduler, std::string name, std::uint64_t seed);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Packet arrival entry points, invoked by the scheduler after the link
  /// delay has elapsed.
  virtual void receive_interest(const ndn::Interest& interest, FaceId in_face) = 0;
  virtual void receive_data(const ndn::Data& data, FaceId in_face) = 0;
  /// NACK arrival; the default implementation drops it.
  virtual void receive_nack(const ndn::Nack& nack, FaceId in_face);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t face_count() const noexcept { return faces_.size(); }
  [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] util::SimTime now() const noexcept { return scheduler_.now(); }

  /// Create a bidirectional link between two nodes; both directions use
  /// `config` (independently sampled). Returns (face on a, face on b).
  friend std::pair<FaceId, FaceId> connect(Node& a, Node& b, const LinkConfig& config);

  /// Transmit out of `face`; delivery is scheduled after the sampled link
  /// delay (or dropped on sampled loss). On links with fifo_queue and a
  /// finite bandwidth, packets additionally serialize behind earlier
  /// transmissions in the same direction.
  void send_interest(FaceId face, const ndn::Interest& interest);
  void send_data(FaceId face, const ndn::Data& data);
  void send_nack(FaceId face, const ndn::Nack& nack);

  /// Peer node on the far end of `face` (diagnostics/topology checks).
  [[nodiscard]] const Node& peer(FaceId face) const;

  /// Outgoing packet-conservation ledger of `face` (see FaceAccounting).
  [[nodiscard]] const FaceAccounting& face_accounting(FaceId face) const;

  /// Fault counters of `face`'s outgoing direction; nullptr when the face
  /// has no fault injection configured.
  [[nodiscard]] const LinkFaultCounters* face_fault_counters(FaceId face) const;

  /// Invariant: on every fault-injected face, packets_out == losses +
  /// deliveries. Only meaningful at quiescence (drained scheduler —
  /// in-flight packets are neither); the chaos harness calls this after
  /// every episode. Throws util::InvariantViolation on breach.
  void check_face_conservation() const;

  /// Publish per-face fault counters summed over this node's faces as
  /// "<prefix>.faults.*" plus the conservation ledger totals.
  void export_fault_metrics(util::MetricsRegistry& registry, const std::string& prefix) const;

 protected:
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }

  /// Pooled copy of a packet for capture in scheduled events. The handle's
  /// object is recycled (not destroyed) when the last capture drops, so its
  /// Name components / payload buffers keep their capacity and steady-state
  /// in-flight copies stop allocating. Handles pin the pool itself, so they
  /// stay valid even if this node is destroyed while packets are in flight.
  template <typename Packet>
  [[nodiscard]] util::PoolRef<Packet> pooled_copy(const Packet& packet) {
    util::PoolRef<Packet> ref = [this] {
      if constexpr (std::is_same_v<Packet, ndn::Interest>) {
        return interest_pool_->acquire();
      } else if constexpr (std::is_same_v<Packet, ndn::Data>) {
        return data_pool_->acquire();
      } else {
        static_assert(std::is_same_v<Packet, ndn::Nack>, "unknown packet type");
        return nack_pool_->acquire();
      }
    }();
    *ref = packet;  // assignment into recycled capacity
    return ref;
  }

 private:
  struct FaceEnd {
    Node* peer = nullptr;
    FaceId peer_face = 0;
    LinkConfig config;
    /// Outgoing transmission frontier for fifo_queue links.
    util::SimTime busy_until = util::kTimeZero;
    /// Fault engine of this face's outgoing direction; created by
    /// connect() only when config.faults.enabled(), so fault-free links
    /// keep their exact pre-fault behavior and RNG streams.
    std::unique_ptr<LinkFaultState> fault_state;
    FaceAccounting accounting;
  };

  /// Common transmission path: samples loss/delay (plus queueing when
  /// enabled) and schedules `deliver` at the arrival time, `extra_delay`
  /// (fault-injected reorder/spike hold-back) later. Takes the scheduler's
  /// native EventFn so the pooled-capture delivery closure moves straight
  /// into the event node without a std::function heap hop.
  void transmit(FaceId face, std::size_t wire_bytes, EventFn deliver,
                const char* kind, const std::string& name_uri,
                util::SimDuration extra_delay = 0);

  /// Shared fault-aware tail of send_interest/send_data/send_nack:
  /// consults the face's fault engine (drop / corrupt / duplicate / delay)
  /// and hands the surviving copies to transmit(). Defined in node.cpp —
  /// only the three send_* methods instantiate it.
  template <typename Packet>
  void transmit_packet(FaceId face, const Packet& packet, const char* kind);

  Scheduler& scheduler_;
  std::string name_;
  util::Rng rng_;
  std::vector<FaceEnd> faces_;
  /// Recycling pools backing pooled_copy() (one per packet type).
  std::shared_ptr<util::ObjectPool<ndn::Interest>> interest_pool_ =
      util::ObjectPool<ndn::Interest>::make();
  std::shared_ptr<util::ObjectPool<ndn::Data>> data_pool_ = util::ObjectPool<ndn::Data>::make();
  std::shared_ptr<util::ObjectPool<ndn::Nack>> nack_pool_ = util::ObjectPool<ndn::Nack>::make();
};

std::pair<FaceId, FaceId> connect(Node& a, Node& b, const LinkConfig& config);

}  // namespace ndnp::sim
