#include "sim/node.hpp"

#include "sim/capture.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/tracing.hpp"

namespace ndnp::sim {

Node::Node(Scheduler& scheduler, std::string name, std::uint64_t seed)
    : scheduler_(scheduler), name_(std::move(name)), rng_(seed) {}

std::pair<FaceId, FaceId> connect(Node& a, Node& b, const LinkConfig& config) {
  if (&a == &b) throw std::invalid_argument("connect: cannot link a node to itself");
  const FaceId fa = a.faces_.size();
  const FaceId fb = b.faces_.size();
  a.faces_.push_back({.peer = &b, .peer_face = fb, .config = config});
  b.faces_.push_back({.peer = &a, .peer_face = fa, .config = config});
  return {fa, fb};
}

void Node::receive_nack(const ndn::Nack& nack, FaceId) {
  util::log(util::LogLevel::kDebug, "%s: dropping nack for %s", name_.c_str(),
            nack.interest.name.to_uri().c_str());
}

void Node::transmit(FaceId face, std::size_t wire_bytes, std::function<void()> deliver,
                    const char* kind, const std::string& name_uri) {
  FaceEnd& end = faces_.at(face);
  if (end.config.sample_loss(rng_)) {
    util::log(util::LogLevel::kDebug, "%s: %s %s lost on face %zu", name_.c_str(), kind,
              name_uri.c_str(), face);
    NDNP_TRACE_EVENT(util::TraceEventType::kLinkDrop, name_, scheduler_.now(), name_uri,
                     std::string("kind=") + kind, static_cast<std::int64_t>(face));
    return;
  }
  // Propagation + jitter (no size component)...
  util::SimDuration delay = end.config.sample_delay(rng_, 0);
  // ... plus transmission, which serializes behind earlier packets when
  // the link models a FIFO queue.
  if (end.config.bandwidth_bps > 0.0) {
    const auto tx = static_cast<util::SimDuration>(
        static_cast<double>(wire_bytes) * 8.0 / end.config.bandwidth_bps * 1e9);
    if (end.config.fifo_queue) {
      const util::SimTime start = std::max(scheduler_.now(), end.busy_until);
      end.busy_until = start + tx;
      delay += (start - scheduler_.now()) + tx;
    } else {
      delay += tx;
    }
  }
  NDNP_TRACE_EVENT(util::TraceEventType::kLinkEnqueue, name_, scheduler_.now(), name_uri,
                   std::string("kind=") + kind, static_cast<std::int64_t>(face), delay,
                   static_cast<std::int64_t>(wire_bytes));
#if NDNP_TRACING
  // Wrap the delivery so the far end's arrival shows up as link_dequeue.
  // The wrapper is built only while a tracer is live: with tracing off the
  // callback is passed through untouched, and either way exactly one event
  // is scheduled, so the simulation's event order cannot change.
  if (util::Tracer* tracer = util::Tracer::current();
      tracer != nullptr && tracer->enabled() && end.peer != nullptr) {
    deliver = [inner = std::move(deliver), sched = &scheduler_, rx_node = end.peer->name(),
               rx_face = static_cast<std::int64_t>(end.peer_face), uri = name_uri,
               detail = std::string("kind=") + kind] {
      NDNP_TRACE_EVENT(util::TraceEventType::kLinkDequeue, rx_node, sched->now(), uri, detail,
                       rx_face);
      inner();
    };
  }
#endif
  scheduler_.schedule_in(delay, std::move(deliver));
}

void Node::send_interest(FaceId face, const ndn::Interest& interest) {
  Node* peer = faces_.at(face).peer;
  const FaceId peer_face = faces_.at(face).peer_face;
  if (const auto& tap = faces_.at(face).config.tap) {
    tap->record({.sent_at = scheduler_.now(),
                 .kind = PacketKind::kInterest,
                 .sender = name_,
                 .receiver = peer->name(),
                 .name = interest.name,
                 .wire_bytes = interest.wire_size(),
                 .wire = ndn::encode(interest)});
  }
  NDNP_TRACE_EVENT(util::TraceEventType::kInterestTx, name_, scheduler_.now(),
                   interest.name.to_uri(), interest.private_req ? "private=1" : "private=0",
                   static_cast<std::int64_t>(face));
  transmit(
      face, interest.wire_size(),
      [peer, peer_face, interest] { peer->receive_interest(interest, peer_face); },
      "interest", interest.name.to_uri());
}

void Node::send_data(FaceId face, const ndn::Data& data) {
  Node* peer = faces_.at(face).peer;
  const FaceId peer_face = faces_.at(face).peer_face;
  if (const auto& tap = faces_.at(face).config.tap) {
    tap->record({.sent_at = scheduler_.now(),
                 .kind = PacketKind::kData,
                 .sender = name_,
                 .receiver = peer->name(),
                 .name = data.name,
                 .wire_bytes = data.wire_size(),
                 .wire = ndn::encode(data)});
  }
  NDNP_TRACE_EVENT(util::TraceEventType::kDataTx, name_, scheduler_.now(), data.name.to_uri(),
                   {}, static_cast<std::int64_t>(face),
                   static_cast<std::int64_t>(data.wire_size()));
  transmit(
      face, data.wire_size(),
      [peer, peer_face, data] { peer->receive_data(data, peer_face); },
      "data", data.name.to_uri());
}

void Node::send_nack(FaceId face, const ndn::Nack& nack) {
  Node* peer = faces_.at(face).peer;
  const FaceId peer_face = faces_.at(face).peer_face;
  if (const auto& tap = faces_.at(face).config.tap) {
    tap->record({.sent_at = scheduler_.now(),
                 .kind = PacketKind::kNack,
                 .sender = name_,
                 .receiver = peer->name(),
                 .name = nack.interest.name,
                 .wire_bytes = nack.wire_size(),
                 .wire = ndn::encode(nack.interest)});
  }
  NDNP_TRACE_EVENT(util::TraceEventType::kNackTx, name_, scheduler_.now(),
                   nack.interest.name.to_uri(), {}, static_cast<std::int64_t>(face));
  transmit(
      face, nack.wire_size(),
      [peer, peer_face, nack] { peer->receive_nack(nack, peer_face); },
      "nack", nack.interest.name.to_uri());
}

const Node& Node::peer(FaceId face) const {
  const FaceEnd& end = faces_.at(face);
  if (end.peer == nullptr) throw std::logic_error("Node::peer: unconnected face");
  return *end.peer;
}

}  // namespace ndnp::sim
