#include "sim/node.hpp"

#include "sim/capture.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/invariant.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/tracing.hpp"

namespace ndnp::sim {

Node::Node(Scheduler& scheduler, std::string name, std::uint64_t seed)
    : scheduler_(scheduler), name_(std::move(name)), rng_(seed) {}

std::pair<FaceId, FaceId> connect(Node& a, Node& b, const LinkConfig& config) {
  if (&a == &b) throw std::invalid_argument("connect: cannot link a node to itself");
  const FaceId fa = a.faces_.size();
  const FaceId fb = b.faces_.size();
  Node::FaceEnd ea;
  ea.peer = &b;
  ea.peer_face = fb;
  ea.config = config;
  Node::FaceEnd eb;
  eb.peer = &a;
  eb.peer_face = fa;
  eb.config = config;
  if (config.faults.enabled()) {
    ea.fault_state = std::make_unique<LinkFaultState>(config.faults, 0);
    eb.fault_state = std::make_unique<LinkFaultState>(config.faults, 1);
  }
  a.faces_.push_back(std::move(ea));
  b.faces_.push_back(std::move(eb));
  return {fa, fb};
}

void Node::receive_nack(const ndn::Nack& nack, FaceId) {
  util::log(util::LogLevel::kDebug, "%s: dropping nack for %s", name_.c_str(),
            nack.interest.name.to_uri().c_str());
}

void Node::transmit(FaceId face, std::size_t wire_bytes, EventFn deliver,
                    const char* kind, const std::string& name_uri,
                    util::SimDuration extra_delay) {
  FaceEnd& end = faces_.at(face);
  ++end.accounting.packets_out;
  if (end.config.sample_loss(rng_)) {
    ++end.accounting.losses;
    util::log(util::LogLevel::kDebug, "%s: %s %s lost on face %zu", name_.c_str(), kind,
              name_uri.c_str(), face);
    NDNP_TRACE_EVENT(util::TraceEventType::kLinkDrop, name_, scheduler_.now(), name_uri,
                     std::string("kind=") + kind, static_cast<std::int64_t>(face));
    return;
  }
  // Propagation + jitter (no size component)...
  util::SimDuration delay = end.config.sample_delay(rng_, 0);
  // ... plus transmission, which serializes behind earlier packets when
  // the link models a FIFO queue.
  if (end.config.bandwidth_bps > 0.0) {
    const auto tx = static_cast<util::SimDuration>(
        static_cast<double>(wire_bytes) * 8.0 / end.config.bandwidth_bps * 1e9);
    if (end.config.fifo_queue) {
      const util::SimTime start = std::max(scheduler_.now(), end.busy_until);
      end.busy_until = start + tx;
      delay += (start - scheduler_.now()) + tx;
    } else {
      delay += tx;
    }
  }
  delay += extra_delay;
  NDNP_TRACE_EVENT(util::TraceEventType::kLinkEnqueue, name_, scheduler_.now(), name_uri,
                   std::string("kind=") + kind, static_cast<std::int64_t>(face), delay,
                   static_cast<std::int64_t>(wire_bytes));
#if NDNP_TRACING
  // Wrap the delivery so the far end's arrival shows up as link_dequeue.
  // The wrapper is built only while a tracer is live: with tracing off the
  // callback is passed through untouched, and either way exactly one event
  // is scheduled, so the simulation's event order cannot change.
  if (util::Tracer* tracer = util::Tracer::current();
      tracer != nullptr && tracer->enabled() && end.peer != nullptr) {
    deliver = [inner = std::move(deliver), sched = &scheduler_, rx_node = end.peer->name(),
               rx_face = static_cast<std::int64_t>(end.peer_face), uri = name_uri,
               detail = std::string("kind=") + kind]() mutable {
      NDNP_TRACE_EVENT(util::TraceEventType::kLinkDequeue, rx_node, sched->now(), uri, detail,
                       rx_face);
      inner();
    };
  }
#endif
  // Close the conservation ledger at delivery time — only where fault
  // injection is active (the wrapper costs an allocation per packet, which
  // benign hot paths do not pay; face indices are stable, so capturing the
  // index survives later connect() reallocation of faces_).
  if (end.fault_state != nullptr) {
    deliver = [this, face, inner = std::move(deliver)]() mutable {
      ++faces_[face].accounting.deliveries;
      inner();
    };
  }
  scheduler_.schedule_in(delay, std::move(deliver));
}

namespace {

// transmit_packet needs one generic spelling for "this packet's name" and
// "hand this packet to the peer"; the overloads below provide it for the
// three packet types.
const ndn::Name& packet_name(const ndn::Interest& interest) { return interest.name; }
const ndn::Name& packet_name(const ndn::Data& data) { return data.name; }
const ndn::Name& packet_name(const ndn::Nack& nack) { return nack.interest.name; }

void dispatch(Node& peer, FaceId face, const ndn::Interest& packet) {
  peer.receive_interest(packet, face);
}
void dispatch(Node& peer, FaceId face, const ndn::Data& packet) {
  peer.receive_data(packet, face);
}
void dispatch(Node& peer, FaceId face, const ndn::Nack& packet) {
  peer.receive_nack(packet, face);
}

}  // namespace

template <typename Packet>
void Node::transmit_packet(FaceId face, const Packet& packet, const char* kind) {
  FaceEnd& end = faces_.at(face);
  Node* peer = end.peer;
  const FaceId peer_face = end.peer_face;
  const std::string uri = packet_name(packet).to_uri();

  const Packet* to_send = &packet;
  Packet corrupted;
  util::SimDuration extra_delay = 0;
  int copies = 1;
  if (end.fault_state != nullptr) {
    const FaultAction action = end.fault_state->on_packet(scheduler_.now());
    if (action.any())
      NDNP_TRACE_EVENT(util::TraceEventType::kFaultInject, name_, scheduler_.now(), uri,
                       std::string("cause=") + (action.cause ? action.cause : "?") +
                           " kind=" + kind,
                       static_cast<std::int64_t>(face), action.extra_delay);
    if (action.drop) {
      ++end.accounting.packets_out;
      ++end.accounting.losses;
      util::log(util::LogLevel::kDebug, "%s: %s %s dropped by fault (%s) on face %zu",
                name_.c_str(), kind, uri.c_str(), action.cause ? action.cause : "?", face);
      NDNP_TRACE_EVENT(util::TraceEventType::kLinkDrop, name_, scheduler_.now(), uri,
                       std::string("kind=") + kind + " cause=" +
                           (action.cause ? action.cause : "?"),
                       static_cast<std::int64_t>(face));
      return;
    }
    if (action.corrupt) {
      std::optional<Packet> mangled = end.fault_state->corrupt(packet);
      if (!mangled.has_value()) {
        // The bit flips broke the TLV framing: the receiver would discard
        // the packet as garbage, so it is dropped here.
        ++end.accounting.packets_out;
        ++end.accounting.losses;
        NDNP_TRACE_EVENT(util::TraceEventType::kLinkDrop, name_, scheduler_.now(), uri,
                         std::string("kind=") + kind + " cause=corrupt_garbage",
                         static_cast<std::int64_t>(face));
        return;
      }
      corrupted = std::move(*mangled);
      to_send = &corrupted;
    }
    extra_delay = action.extra_delay;
    if (action.duplicate) copies = 2;
  }
  // One pooled copy shared by all scheduled deliveries (fault duplication
  // included); the pool recycles the buffer capacity once the last copy is
  // dispatched.
  util::PoolRef<Packet> pooled = pooled_copy(*to_send);
  for (int i = 0; i < copies; ++i) {
    transmit(
        face, to_send->wire_size(),
        [peer, peer_face, pooled] { dispatch(*peer, peer_face, *pooled); }, kind, uri,
        extra_delay);
  }
}

void Node::send_interest(FaceId face, const ndn::Interest& interest) {
  Node* peer = faces_.at(face).peer;
  if (const auto& tap = faces_.at(face).config.tap) {
    tap->record({.sent_at = scheduler_.now(),
                 .kind = PacketKind::kInterest,
                 .sender = name_,
                 .receiver = peer->name(),
                 .name = interest.name,
                 .wire_bytes = interest.wire_size(),
                 .wire = ndn::encode(interest)});
  }
  NDNP_TRACE_EVENT(util::TraceEventType::kInterestTx, name_, scheduler_.now(),
                   interest.name.to_uri(), interest.private_req ? "private=1" : "private=0",
                   static_cast<std::int64_t>(face));
  transmit_packet(face, interest, "interest");
}

void Node::send_data(FaceId face, const ndn::Data& data) {
  Node* peer = faces_.at(face).peer;
  if (const auto& tap = faces_.at(face).config.tap) {
    tap->record({.sent_at = scheduler_.now(),
                 .kind = PacketKind::kData,
                 .sender = name_,
                 .receiver = peer->name(),
                 .name = data.name,
                 .wire_bytes = data.wire_size(),
                 .wire = ndn::encode(data)});
  }
  NDNP_TRACE_EVENT(util::TraceEventType::kDataTx, name_, scheduler_.now(), data.name.to_uri(),
                   {}, static_cast<std::int64_t>(face),
                   static_cast<std::int64_t>(data.wire_size()));
  transmit_packet(face, data, "data");
}

void Node::send_nack(FaceId face, const ndn::Nack& nack) {
  Node* peer = faces_.at(face).peer;
  if (const auto& tap = faces_.at(face).config.tap) {
    tap->record({.sent_at = scheduler_.now(),
                 .kind = PacketKind::kNack,
                 .sender = name_,
                 .receiver = peer->name(),
                 .name = nack.interest.name,
                 .wire_bytes = nack.wire_size(),
                 .wire = ndn::encode(nack.interest)});
  }
  NDNP_TRACE_EVENT(util::TraceEventType::kNackTx, name_, scheduler_.now(),
                   nack.interest.name.to_uri(), {}, static_cast<std::int64_t>(face));
  transmit_packet(face, nack, "nack");
}

const Node& Node::peer(FaceId face) const {
  const FaceEnd& end = faces_.at(face);
  if (end.peer == nullptr) throw std::logic_error("Node::peer: unconnected face");
  return *end.peer;
}

const FaceAccounting& Node::face_accounting(FaceId face) const {
  return faces_.at(face).accounting;
}

const LinkFaultCounters* Node::face_fault_counters(FaceId face) const {
  const FaceEnd& end = faces_.at(face);
  return end.fault_state ? &end.fault_state->counters() : nullptr;
}

void Node::check_face_conservation() const {
  for (FaceId face = 0; face < faces_.size(); ++face) {
    const FaceEnd& end = faces_[face];
    if (end.fault_state == nullptr) continue;  // deliveries not tracked
    const FaceAccounting& acct = end.accounting;
    NDNP_INVARIANT_CHECK("link", acct.packets_out == acct.losses + acct.deliveries,
                         "%s face %zu: packets_out=%llu != losses=%llu + deliveries=%llu",
                         name_.c_str(), face,
                         static_cast<unsigned long long>(acct.packets_out),
                         static_cast<unsigned long long>(acct.losses),
                         static_cast<unsigned long long>(acct.deliveries));
  }
}

void Node::export_fault_metrics(util::MetricsRegistry& registry,
                                const std::string& prefix) const {
  LinkFaultCounters faults;
  FaceAccounting acct;
  for (const FaceEnd& end : faces_) {
    if (end.fault_state != nullptr) faults += end.fault_state->counters();
    acct.packets_out += end.accounting.packets_out;
    acct.losses += end.accounting.losses;
    acct.deliveries += end.accounting.deliveries;
  }
  faults.export_metrics(registry, prefix + ".faults");
  registry.counter(prefix + ".link.packets_out").inc(acct.packets_out);
  registry.counter(prefix + ".link.losses").inc(acct.losses);
  registry.counter(prefix + ".link.deliveries").inc(acct.deliveries);
}

}  // namespace ndnp::sim
